package multistep

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/ctxpoll"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
)

// This file is the unified query API of the package: two entry points,
//
//	Join(ctx, r, s, opts...)  — the predicate-parameterized spatial join
//	Query(ctx, r, opts...)    — window / point / nearest queries on one
//	                            relation
//
// replacing the pre-redesign combinatorial surface (Join, JoinParallel,
// JoinStream, JoinContains, and an *Access twin of every query). The
// predicate (Intersects, Contains, WithinDistance) and every execution
// concern — worker count, streaming emission, per-query access contexts,
// result limits — are orthogonal functional options, and the context is
// threaded through the whole pipeline, so cancelling it stops the work
// mid-join.

// Errors of the unified query API.
var (
	// ErrNoTarget reports a Query without a ForWindow, ForPoint or
	// ForNearest target.
	ErrNoTarget = errors.New("multistep: query has no target (use ForWindow, ForPoint or ForNearest)")
	// ErrBadPredicate reports a predicate the entry point cannot evaluate
	// (a negative distance bound, or Contains/nearest combinations a
	// single-relation query has no semantics for).
	ErrBadPredicate = errors.New("multistep: unsupported predicate for this query")
)

// queryOptions is the resolved option set of one Join or Query call.
type queryOptions struct {
	cfg        *Config // nil: use the relations' build configuration
	pred       Predicate
	workers    int
	batch      int
	queue      int
	emit       func(Pair)
	bufferless bool
	axR, axS   storage.Accessor
	limit      int // < 0: unlimited

	window   *geom.Rect
	point    *geom.Point
	nearest  bool
	nearestK int
	partial  bool // WithPartialResults: coordinators may degrade

	planned bool     // WithPlan: resolve unset options via the planner
	explain *Explain // WithExplain: capture plan + predicted-vs-actual
}

// Option configures one Join or Query call. Options are orthogonal: any
// combination that makes sense may be passed, and the zero set reproduces
// the paper's sequential accounting on the relations' build
// configuration.
type Option func(*queryOptions)

// WithPredicate selects the spatial predicate (default Intersects).
func WithPredicate(p Predicate) Option {
	return func(o *queryOptions) { o.pred = p }
}

// WithConfig overrides the processor configuration. Without it the
// relations' build configuration is used, which is almost always right:
// the approximations and tree layout were computed under it. Joins of two
// relations built under different configurations are rejected unless an
// explicit override is given.
func WithConfig(cfg Config) Option {
	return func(o *queryOptions) { o.cfg = &cfg }
}

// WithWorkers sets the worker count of the join pipeline: the step 1
// traversal fan-out and the step 2+3 pool size alike. n ≤ 0 selects
// GOMAXPROCS (the default); values above 4×GOMAXPROCS are clamped —
// beyond that, extra workers only cost memory and scheduling overhead.
// Statistics are independent of the worker count by construction.
func WithWorkers(n int) Option {
	return func(o *queryOptions) { o.workers = n }
}

// WithBatch sets the candidate batch size of the join pipeline (default
// 256); WithQueue sets the bounded channel depth in batches (default
// 4×workers). Together they cap the in-flight memory.
func WithBatch(n int) Option {
	return func(o *queryOptions) { o.batch = n }
}

// WithQueue sets the bounded queue depth of the join pipeline in batches.
func WithQueue(n int) Option {
	return func(o *queryOptions) { o.queue = n }
}

// WithStream streams response pairs to emit as they are decided (from a
// single collector goroutine, in no particular order) instead of
// collecting them: Join returns a nil slice and memory stays bounded by
// the pipeline depth regardless of the response-set size.
func WithStream(emit func(Pair)) Option {
	return func(o *queryOptions) { o.emit = emit }
}

// WithBufferless discards the response set entirely: Join returns a nil
// slice and only the statistics. (WithStream already implies bounded
// memory; WithBufferless is for measurement runs that need no pairs at
// all.)
func WithBufferless() Option {
	return func(o *queryOptions) { o.bufferless = true }
}

// WithSessions routes each side's page visits through explicit per-query
// access contexts — typically Relation.NewSession of each side. With both
// set, the call never touches the shared tree buffers, so any number of
// queries may run concurrently on the same relations, each reporting
// exactly its solo-run statistics. A nil accessor selects the shared
// buffer (counters reset first) for that side — the paper's sequential
// single-query accounting, one query at a time.
func WithSessions(axR, axS storage.Accessor) Option {
	return func(o *queryOptions) { o.axR, o.axS = axR, axS }
}

// WithSession is WithSessions for the single-relation Query entry point.
func WithSession(ax storage.Accessor) Option {
	return func(o *queryOptions) { o.axR = ax }
}

// WithLimit caps the number of response pairs Join returns (the sorted
// (A, B)-prefix of the full response set; statistics always reflect the
// complete join). n < 0 means unlimited, the default.
func WithLimit(n int) Option {
	return func(o *queryOptions) { o.limit = n }
}

// ForWindow targets Query at a window: the objects whose regions
// intersect w (or, under WithinDistance(ε), come within ε of it).
func ForWindow(w geom.Rect) Option {
	return func(o *queryOptions) { o.window = &w }
}

// ForPoint targets Query at a point: the objects whose regions contain p
// (or, under WithinDistance(ε), come within ε of it — the ε-range query).
func ForPoint(p geom.Point) Option {
	return func(o *queryOptions) { o.point = &p }
}

// WithPartialResults marks a query as degradable: a multi-relation
// coordinator (internal/shard's scatter-gather layer) may answer from
// the tiles that succeeded when others fail, flagging the result as
// degraded instead of failing the whole query. The single-relation
// entry points ignore it (one relation either answers or errors), and
// joins always fail closed — a partial join silently loses pairs.
func WithPartialResults() Option {
	return func(o *queryOptions) { o.partial = true }
}

// ForNearest targets Query at the k objects closest to p by exact region
// distance, refined over R*-tree MBR-distance candidates.
func ForNearest(p geom.Point, k int) Option {
	return func(o *queryOptions) {
		o.point = &p
		o.nearest = true
		o.nearestK = k
	}
}

// resolve applies the options and defaults.
func resolve(opts []Option) queryOptions {
	o := queryOptions{limit: -1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Resolved is the read-only resolved view of an option list. It exists
// for coordinators that route one logical query across several
// relations (internal/shard's scatter-gather layer): they need the
// predicate for tile routing, the limit for global truncation, and the
// target to pick the merge shape, while the remaining options pass
// through to the per-tile Join/Query calls verbatim.
type Resolved struct {
	// Pred is the configured predicate (the zero value is Intersects).
	Pred Predicate
	// Cfg is the WithConfig override, nil without one.
	Cfg *Config
	// Limit is the WithLimit cap; < 0 means unlimited.
	Limit int
	// Stream is the WithStream emitter, nil without one.
	Stream func(Pair)
	// Bufferless reports WithBufferless.
	Bufferless bool
	// Window, Point, Nearest and NearestK mirror the ForWindow, ForPoint
	// and ForNearest targets.
	Window   *geom.Rect
	Point    *geom.Point
	Nearest  bool
	NearestK int
	// Plan reports WithPlan; Explain is the WithExplain capture target,
	// nil without one. A coordinator fanning one logical join across
	// tile pairs must give each sub-join its own Explain (appending a
	// fresh WithExplain overrides this one) and aggregate afterwards.
	Plan    bool
	Explain *Explain
	// Workers is the WithWorkers value, 0 when unset. Caching
	// coordinators need it: sub-result identity includes the requested
	// worker count because the per-tile plan echo depends on it.
	Workers int
	// Partial reports WithPartialResults — a coordinator may answer
	// from the succeeding tiles and mark the result degraded.
	Partial bool
}

// ResolveOptions applies an option list and returns the resolved view.
func ResolveOptions(opts []Option) Resolved {
	o := resolve(opts)
	return Resolved{
		Pred: o.pred, Cfg: o.cfg, Limit: o.limit,
		Stream: o.emit, Bufferless: o.bufferless,
		Window: o.window, Point: o.point,
		Nearest: o.nearest, NearestK: o.nearestK,
		Plan: o.planned, Explain: o.explain,
		Workers: o.workers, Partial: o.partial,
	}
}

// Validate rejects predicates no join or query can evaluate (a negative
// distance bound) — the same check the Join and Query entry points run.
func (p Predicate) Validate() error { return p.validate() }

// ValidateQueryTarget checks the target/predicate combination exactly as
// the single-relation Query entry point would, so a routing layer can
// reject a malformed query before fanning it out to any tile.
func (o Resolved) ValidateQueryTarget() error {
	switch {
	case o.Nearest:
		if o.Window != nil {
			return errors.New("multistep: query has more than one target")
		}
		if o.Pred.kind != predIntersects {
			return fmt.Errorf("%w: nearest-objects queries take no predicate", ErrBadPredicate)
		}
	case o.Window != nil && o.Point != nil:
		return errors.New("multistep: query has more than one target")
	case o.Window == nil && o.Point == nil:
		return ErrNoTarget
	default:
		if o.Pred.kind == predContains {
			return fmt.Errorf("%w: containment of a window is not a query predicate", ErrBadPredicate)
		}
	}
	return nil
}

// joinConfig picks the effective configuration of a join and rejects
// mismatched build configurations without an explicit override.
func joinConfig(r, s *Relation, o *queryOptions) (Config, error) {
	if o.cfg != nil {
		return *o.cfg, nil
	}
	if ConfigFingerprint(r.Cfg) != ConfigFingerprint(s.Cfg) {
		return Config{}, fmt.Errorf("multistep: relations %q and %q were built under different configurations: %w",
			r.Name, s.Name, ErrConfigMismatch)
	}
	return r.Cfg, nil
}

// Join runs the multi-step spatial join of r and s under the configured
// predicate (default Intersects) and returns the response set sorted by
// (A, B) along with the per-step statistics. Every statistic is
// independent of the worker count and of streaming by construction, so
// one entry point serves measurement and production alike.
//
// Cancellation: when ctx is cancelled, the step 1 traversal workers, the
// filter/exact pool and the collector all stop at their next check; Join
// returns ctx.Err() and partial statistics that must not be interpreted.
//
// Accounting: without WithSessions the page accounting runs on the shared
// tree buffers (counters reset first) — the paper's sequential mode, one
// query at a time. With per-query sessions on both sides the join is
// fully concurrent-safe.
func Join(ctx context.Context, r, s *Relation, opts ...Option) ([]Pair, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := resolve(opts)
	if err := o.pred.validate(); err != nil {
		return nil, Stats{}, err
	}
	cfg, err := joinConfig(r, s, &o)
	if err != nil {
		return nil, Stats{}, err
	}

	// Adaptive planning: WithPlan resolves the dimensions the caller
	// left open (engine, filter, workers) through internal/plan; pinned
	// dimensions pass through unchanged, so explicit options win.
	var pl Plan
	switch {
	case o.planned:
		cfg, o.workers, pl = planJoin(r, s, cfg, &o)
	case o.explain != nil:
		pl = echoPlan(cfg, &o)
	}

	emit := o.emit
	var out []Pair
	collect := emit == nil && !o.bufferless
	if collect {
		emit = func(p Pair) { out = append(out, p) }
	}
	var started time.Time
	if o.explain != nil {
		started = time.Now()
	}
	st, err := joinStream(ctx, r, s, cfg, o.pred, o, emit)
	if err == nil {
		observeJoin(r, s, cfg, o.pred, pl, st)
	}
	if o.explain != nil {
		fillExplain(o.explain, pl, st, time.Since(started), err == nil)
	}
	if err != nil {
		return nil, st, err
	}
	if collect {
		sortResponse(out)
		if o.limit >= 0 && len(out) > o.limit {
			out = out[:o.limit]
		}
	}
	return out, st, nil
}

// sortResponse orders a response set by (A, B) — the canonical order of
// the collected join result. Pairs are unique, so the (A, B) comparison
// is a total order and the typed sort returns the identical sequence the
// reflection-based sort did.
func sortResponse(ps []Pair) {
	slices.SortFunc(ps, func(p, q Pair) int {
		switch {
		case p.A != q.A:
			return int(p.A - q.A)
		default:
			return int(p.B - q.B)
		}
	})
}

// QueryResult is the answer of the unified Query entry point.
type QueryResult struct {
	// IDs lists the qualifying objects for window and point targets,
	// in tree-delivery order (the pre-redesign order).
	IDs []int32
	// Neighbors lists the k nearest objects for ForNearest targets, by
	// ascending exact region distance.
	Neighbors []Neighbor
	// Stats carries the per-step measurements; for ForNearest only the
	// page accounting and result count apply.
	Stats WindowStats
}

// Query runs a multi-step query on one relation: a window query, a point
// query, an ε-range query (a window/point target with WithinDistance), or
// a k-nearest-objects query. Exactly one target option (ForWindow,
// ForPoint, ForNearest) is required.
//
// Accounting follows Join: the shared tree buffer (counters reset first)
// without WithSession, an isolated per-query context with it.
// Cancellation stops the tree traversal at the next node and returns
// ctx.Err().
func Query(ctx context.Context, r *Relation, opts ...Option) (QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := resolve(opts)
	if err := o.pred.validate(); err != nil {
		return QueryResult{}, err
	}
	cfg := r.Cfg
	if o.cfg != nil {
		cfg = *o.cfg
	}
	// Adaptive planning for single-relation queries: the only open
	// dimension is the filter (queries are single-threaded and engine-
	// free), pinned by an explicit WithConfig as usual.
	var pl Plan
	if o.planned || o.explain != nil {
		cfg, pl = planQuery(r, cfg, &o)
	}
	ax := o.axR
	if ax == nil {
		buf := r.Tree.Buffer()
		buf.ResetCounters()
		ax = buf
	}
	if o.explain != nil {
		started := time.Now()
		res, err := queryDispatch(ctx, r, ax, cfg, &o)
		ex := o.explain
		ex.Plan = pl
		ex.Executed = err == nil
		if err == nil {
			ex.ActualCandidates = res.Stats.Candidates
			ex.ActualExactTested = res.Stats.ExactTested
			ex.ActualResultPairs = res.Stats.ResultObjects
			ex.ActualWallNs = time.Since(started).Nanoseconds()
		}
		return res, err
	}
	return queryDispatch(ctx, r, ax, cfg, &o)
}

// queryDispatch routes a resolved Query to its target implementation.
func queryDispatch(ctx context.Context, r *Relation, ax storage.Accessor, cfg Config, o *queryOptions) (QueryResult, error) {
	switch {
	case o.nearest:
		if o.window != nil {
			return QueryResult{}, errors.New("multistep: query has more than one target")
		}
		if o.pred.kind != predIntersects {
			return QueryResult{}, fmt.Errorf("%w: nearest-objects queries take no predicate", ErrBadPredicate)
		}
		return nearestQuery(ctx, r, ax, *o.point, o.nearestK)
	case o.window != nil && o.point == nil:
		return rangeQuery(ctx, r, ax, *o.window, cfg, o.pred, o.limit)
	case o.point != nil && o.window == nil:
		w := geom.Rect{MinX: o.point.X, MinY: o.point.Y, MaxX: o.point.X, MaxY: o.point.Y}
		return rangeQuery(ctx, r, ax, w, cfg, o.pred, o.limit)
	case o.window != nil && o.point != nil:
		return QueryResult{}, errors.New("multistep: query has more than one target")
	default:
		return QueryResult{}, ErrNoTarget
	}
}

// rangeQuery answers window and point targets under the Intersects and
// WithinDistance predicates: the R*-tree delivers the objects whose MBRs
// satisfy the (ε-expanded) window predicate, the geometric filter decides
// most of them on approximations (Intersects only; distance queries go
// straight to the exact kernel), and the rest are decided exactly.
func rangeQuery(ctx context.Context, r *Relation, ax storage.Accessor, w geom.Rect, cfg Config, pred Predicate, limit int) (QueryResult, error) {
	if pred.kind == predContains {
		return QueryResult{}, fmt.Errorf("%w: containment of a window is not a query predicate", ErrBadPredicate)
	}
	var res QueryResult
	eps := pred.step1Eps()
	missesBefore := ax.Misses()
	stop, release := ctxpoll.Stop(ctx)
	defer release()
	// ferr latches the first fault the "exact" injection site fires on
	// this query's exact decisions; the traversal keeps its shape (the
	// counters stay deterministic) and the error surfaces afterwards.
	var ferr error
	r.Tree.WindowQueryAccessStop(ax, w.Expand(eps), stop, func(it rstar.Item) {
		res.Stats.Candidates++
		o := r.Objects[it.ID]
		if pred.kind == predWithin {
			// The ε-range test: exact region-to-window distance, the same
			// kernel the nearest-objects refinement uses.
			res.Stats.ExactTested++
			if e := fault.Check("exact"); e != nil && ferr == nil {
				ferr = e
				return
			}
			if o.Poly.DistToRect(w) <= eps {
				res.IDs = append(res.IDs, o.ID)
			}
			return
		}
		if cfg.UseFilter {
			switch cfg.Filter.ClassifyWindow(o.Approx, w) {
			case approx.Hit:
				res.Stats.FilterHits++
				res.IDs = append(res.IDs, o.ID)
				return
			case approx.FalseHit:
				res.Stats.FilterFalseHits++
				return
			}
		}
		res.Stats.ExactTested++
		if e := fault.Check("exact"); e != nil && ferr == nil {
			ferr = e
			return
		}
		var c Stats // scratch counter sink; window queries report counts only
		if exact.IntersectsRectExact(o.Prepared(), w, &c.Ops) {
			res.IDs = append(res.IDs, o.ID)
		}
	})
	if err := ctx.Err(); err != nil {
		return QueryResult{}, err
	}
	if ferr != nil {
		return QueryResult{}, ferr
	}
	if limit >= 0 && len(res.IDs) > limit {
		res.IDs = res.IDs[:limit]
	}
	res.Stats.PageAccesses = ax.Misses() - missesBefore
	res.Stats.ResultObjects = int64(len(res.IDs))
	return res, nil
}

// nearestQuery answers ForNearest targets: the best-first R*-tree search
// delivers MBR-distance candidates (a lower bound of the region
// distance), which are refined by exact region distance until the k-th
// best exact distance is proven final.
func nearestQuery(ctx context.Context, r *Relation, ax storage.Accessor, p geom.Point, k int) (QueryResult, error) {
	var res QueryResult
	missesBefore := ax.Misses()
	if k <= 0 || len(r.Objects) == 0 {
		return res, nil
	}
	if k > len(r.Objects) {
		k = len(r.Objects)
	}
	fetch := k * 4
	if fetch < k+8 {
		fetch = k + 8
	}
	for {
		if err := ctx.Err(); err != nil {
			return QueryResult{}, err
		}
		if fetch > len(r.Objects) {
			fetch = len(r.Objects)
		}
		cands := r.Tree.NearestNeighborsAccess(ax, p, fetch)
		res.Stats.Candidates = int64(len(cands))
		out := make([]Neighbor, 0, len(cands))
		for _, it := range cands {
			out = append(out, Neighbor{
				ID:   it.ID,
				Dist: r.Objects[it.ID].Poly.DistToPoint(p),
			})
		}
		res.Stats.ExactTested += int64(len(cands))
		slices.SortFunc(out, func(a, b Neighbor) int {
			switch {
			case a.Dist < b.Dist:
				return -1
			case a.Dist > b.Dist:
				return 1
			default:
				return int(a.ID - b.ID)
			}
		})
		done := fetch == len(r.Objects)
		if !done {
			// The MBR distance of the last candidate bounds every
			// unexamined object from below.
			lastMBRDist := mbrDist(cands[len(cands)-1].Rect, p)
			done = out[k-1].Dist <= lastMBRDist
		}
		if done {
			res.Neighbors = out[:k]
			res.Stats.ResultObjects = int64(k)
			res.Stats.PageAccesses = ax.Misses() - missesBefore
			return res, nil
		}
		fetch *= 2
	}
}
