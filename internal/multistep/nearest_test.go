package multistep

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

// testNearest is the old NearestObjects(rel, p, k): shared-buffer
// accounting through the unified Query entry point.
func testNearest(t testing.TB, rel *Relation, p geom.Point, k int) []Neighbor {
	t.Helper()
	if k <= 0 {
		return nil
	}
	res, err := Query(context.Background(), rel, ForNearest(p, k))
	if err != nil {
		t.Fatal(err)
	}
	return res.Neighbors
}

func TestNearestObjectsMatchesBruteForce(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 120, TargetVerts: 32, Seed: 941})
	cfg := DefaultConfig()
	cfg.UseFilter = false
	rel := NewRelation("R", polys, cfg)
	rng := rand.New(rand.NewSource(947))
	for trial := 0; trial < 60; trial++ {
		p := geom.Point{X: rng.Float64()*1.4 - 0.2, Y: rng.Float64()*1.4 - 0.2}
		k := 1 + rng.Intn(8)
		got := testNearest(t, rel, p, k)
		if len(got) != k {
			t.Fatalf("trial %d: got %d neighbours, want %d", trial, len(got), k)
		}
		// Brute-force ground truth.
		type nd struct {
			id int32
			d  float64
		}
		all := make([]nd, len(polys))
		for i, poly := range polys {
			all[i] = nd{id: int32(i), d: poly.DistToPoint(p)}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		for i, nb := range got {
			if nb.Dist > all[k-1].d+1e-9 {
				t.Fatalf("trial %d: neighbour %d at distance %v beyond true k-th %v",
					trial, i, nb.Dist, all[k-1].d)
			}
			if i > 0 && nb.Dist+1e-12 < got[i-1].Dist {
				t.Fatalf("trial %d: results not sorted by distance", trial)
			}
		}
		// The set of distances must match exactly (IDs may swap on ties).
		for i := 0; i < k; i++ {
			if gotD, wantD := got[i].Dist, all[i].d; gotD != wantD {
				t.Fatalf("trial %d: distance %d = %v, want %v", trial, i, gotD, wantD)
			}
		}
	}
}

func TestNearestObjectsEdgeCases(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 9, TargetVerts: 24, Seed: 953})
	cfg := DefaultConfig()
	cfg.UseFilter = false
	rel := NewRelation("R", polys, cfg)
	if got := testNearest(t, rel, geom.Point{}, 0); got != nil {
		t.Error("k=0 must return nil")
	}
	// k larger than the relation clamps.
	got := testNearest(t, rel, geom.Point{X: 0.5, Y: 0.5}, 100)
	if len(got) != len(polys) {
		t.Errorf("k beyond relation size: got %d, want %d", len(got), len(polys))
	}
	// A point inside some polygon has distance 0 to it.
	inside := testNearest(t, rel, geom.Point{X: 0.5, Y: 0.5}, 1)
	if inside[0].Dist != 0 {
		t.Errorf("point inside the tiling must have a 0-distance neighbour, got %v", inside[0].Dist)
	}
}
