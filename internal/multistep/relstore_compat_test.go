package multistep

// Backward compatibility of the relation store: version 1 stores —
// written before the planner-statistics trailer existed — must still
// open, with the statistics recomputed from the decoded objects, and
// must join identically to a version 2 store of the same relation.
// The test derives a byte-exact v1 blob from the current encoder by
// stripping the trailer and patching the version field: everything
// before the trailer is unchanged between the versions.

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/plan"
)

// toV1 converts a version 2 relation-store blob into the version 1
// layout: the stats trailer (u32 length + blob at the very end) is
// dropped and the version field rewritten.
func toV1(t *testing.T, v2 []byte, st *plan.Stats) []byte {
	t.Helper()
	n := len(plan.AppendStats(nil, st))
	if len(v2) < n+4 {
		t.Fatalf("v2 blob of %d bytes cannot hold a %d-byte stats trailer", len(v2), n)
	}
	if got := binary.LittleEndian.Uint32(v2[len(v2)-n-4:]); got != uint32(n) {
		t.Fatalf("trailer length prefix %d, want %d", got, n)
	}
	v1 := append([]byte(nil), v2[:len(v2)-n-4]...)
	binary.LittleEndian.PutUint16(v1[4:], 1)
	return v1
}

func TestRelationStoreV1Compat(t *testing.T) {
	cfg := DefaultConfig()
	base := data.GenerateMap(data.MapConfig{Cells: 120, TargetVerts: 24, Seed: 99})
	shifted := data.StrategyA(base, 0.45)
	rel := NewRelation("R", base, cfg)
	s := NewRelation("S", shifted, cfg)

	var buf bytes.Buffer
	if err := SaveRelation(&buf, rel, cfg); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	v1 := toV1(t, v2, rel.Stats)

	fromV2, err := OpenRelation(bytes.NewReader(v2), cfg)
	if err != nil {
		t.Fatalf("open v2: %v", err)
	}
	fromV1, err := OpenRelation(bytes.NewReader(v1), cfg)
	if err != nil {
		t.Fatalf("open v1 (stats-less) store: %v", err)
	}

	// A v1 store has no persisted statistics; opening must recompute the
	// structural part so the planner works on old stores too.
	if fromV1.Stats == nil {
		t.Fatal("v1 store opened without recomputed statistics")
	}
	if fromV1.Stats.Objects != int64(len(rel.Objects)) {
		t.Fatalf("recomputed stats describe %d objects, want %d", fromV1.Stats.Objects, len(rel.Objects))
	}
	if fromV1.Stats.MBR != rel.Stats.MBR || fromV1.Stats.MeanVerts != rel.Stats.MeanVerts {
		t.Errorf("recomputed structural stats diverge: %+v vs %+v", fromV1.Stats, rel.Stats)
	}
	if !reflect.DeepEqual(fromV1.Stats.Grid, rel.Stats.Grid) {
		t.Error("recomputed density grid diverges from the saved one")
	}

	// Identical joins: response set and full statistics, including the
	// restored buffer accounting.
	p2, st2, err := Join(t.Context(), fromV2, s, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	p1, st1, err := Join(t.Context(), fromV1, s, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("v1-opened relation joined differently: %d vs %d pairs", len(p1), len(p2))
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("v1-opened relation reported different statistics:\nv1 %+v\nv2 %+v", st1, st2)
	}
}
