package multistep

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"spatialjoin/internal/data"
)

// batchTestRelations builds a small relation pair for the batch
// equivalence tests.
func batchTestRelations(t *testing.T) (*Relation, *Relation, Config) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BufferBytes = 8 << 10
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)
	return NewRelation("r", rp, cfg), NewRelation("s", sp, cfg), cfg
}

// soloRun executes one request exactly as JoinBatch members are
// executed: on fresh sessions seeded from the shared buffer snapshot,
// so page accounting is identical across runs.
func soloRun(t *testing.T, r, s *Relation, opts []Option) ([]Pair, Stats) {
	t.Helper()
	solo := append([]Option{WithSessions(r.NewSession(), s.NewSession())}, opts...)
	pairs, st, err := Join(context.Background(), r, s, solo...)
	if err != nil {
		t.Fatalf("solo Join: %v", err)
	}
	return pairs, st
}

// TestJoinBatchMatchesSolo is the tentpole equivalence proof at the
// multistep layer: every request in a mixed batch — different
// predicates (same step-1 ε), configurations, worker counts, limits —
// must report exactly the pairs and candidate-level Stats of its solo
// run.
func TestJoinBatchMatchesSolo(t *testing.T) {
	r, s, cfg := batchTestRelations(t)
	noFilter := cfg
	noFilter.UseFilter = false
	quad := cfg
	quad.Engine = EngineQuadratic

	items := [][]Option{
		{WithPredicate(Intersects())},
		{WithPredicate(Contains())},
		{WithPredicate(WithinDistance(0))},
		{WithPredicate(Intersects()), WithConfig(noFilter)},
		{WithPredicate(Contains()), WithConfig(quad), WithWorkers(3)},
		{WithPredicate(Intersects()), WithLimit(7)},
		{WithPredicate(Intersects()), WithBufferless()},
	}

	outs, err := JoinBatch(context.Background(), r, s, r.NewSession(), s.NewSession(), items)
	if err != nil {
		t.Fatalf("JoinBatch: %v", err)
	}
	if len(outs) != len(items) {
		t.Fatalf("got %d results for %d items", len(outs), len(items))
	}
	for i, opts := range items {
		pairs, st := soloRun(t, r, s, opts)
		if !reflect.DeepEqual(outs[i].Stats, st) {
			t.Errorf("item %d: batched Stats = %+v\n                solo Stats = %+v", i, outs[i].Stats, st)
		}
		if !reflect.DeepEqual(outs[i].Pairs, pairs) {
			t.Errorf("item %d: batched pairs (%d) differ from solo pairs (%d)", i, len(outs[i].Pairs), len(pairs))
		}
	}
	if outs[6].Pairs != nil {
		t.Error("bufferless item returned pairs")
	}
}

// TestJoinBatchSingleItem: the one-request batch — the serving layer's
// common path — is the solo run, byte for byte. This makes routing
// every request through the batch entry point safe.
func TestJoinBatchSingleItem(t *testing.T) {
	r, s, _ := batchTestRelations(t)
	opts := []Option{WithPredicate(Intersects()), WithLimit(25)}
	outs, err := JoinBatch(context.Background(), r, s, r.NewSession(), s.NewSession(), [][]Option{opts})
	if err != nil {
		t.Fatalf("JoinBatch: %v", err)
	}
	pairs, st := soloRun(t, r, s, opts)
	if !reflect.DeepEqual(outs[0].Stats, st) || !reflect.DeepEqual(outs[0].Pairs, pairs) {
		t.Fatalf("single-item batch differs from solo:\nbatch %+v\nsolo  %+v", outs[0].Stats, st)
	}
}

// TestJoinBatchWithinEps: a ε-join batch group (shared ε = 0.004)
// across engines and filter settings.
func TestJoinBatchWithinEps(t *testing.T) {
	r, s, cfg := batchTestRelations(t)
	const eps = 0.004
	noFilter := cfg
	noFilter.UseFilter = false
	items := [][]Option{
		{WithPredicate(WithinDistance(eps))},
		{WithPredicate(WithinDistance(eps)), WithConfig(noFilter)},
		{WithPredicate(WithinDistance(eps)), WithWorkers(2), WithLimit(11)},
	}
	outs, err := JoinBatch(context.Background(), r, s, r.NewSession(), s.NewSession(), items)
	if err != nil {
		t.Fatalf("JoinBatch: %v", err)
	}
	for i, opts := range items {
		pairs, st := soloRun(t, r, s, opts)
		if !reflect.DeepEqual(outs[i].Stats, st) {
			t.Errorf("item %d: batched Stats = %+v\n                solo Stats = %+v", i, outs[i].Stats, st)
		}
		if !reflect.DeepEqual(outs[i].Pairs, pairs) {
			t.Errorf("item %d: pairs differ", i)
		}
	}
}

// TestJoinBatchExplain: per-request Explain captures in a batch carry
// each request's own plan and actuals.
func TestJoinBatchExplain(t *testing.T) {
	r, s, _ := batchTestRelations(t)
	var ex0, ex1 Explain
	items := [][]Option{
		{WithPredicate(Intersects()), WithPlan(), WithExplain(&ex0)},
		{WithPredicate(Contains()), WithPlan(), WithExplain(&ex1)},
	}
	outs, err := JoinBatch(context.Background(), r, s, r.NewSession(), s.NewSession(), items)
	if err != nil {
		t.Fatalf("JoinBatch: %v", err)
	}
	if !ex0.Executed || !ex1.Executed {
		t.Fatal("explains not marked executed")
	}
	if ex0.ActualResultPairs != outs[0].Stats.ResultPairs || ex1.ActualResultPairs != outs[1].Stats.ResultPairs {
		t.Fatalf("explain actuals do not match results: %d/%d vs %d/%d",
			ex0.ActualResultPairs, ex1.ActualResultPairs, outs[0].Stats.ResultPairs, outs[1].Stats.ResultPairs)
	}
	if !ex0.Plan.Planned || !ex1.Plan.Planned {
		t.Fatal("planned batch items lost their plan record")
	}
}

// TestJoinBatchRejections: mixed ε, streaming members and oversized
// batches are rejected before any work happens.
func TestJoinBatchRejections(t *testing.T) {
	r, s, _ := batchTestRelations(t)
	ctx := context.Background()

	_, err := JoinBatch(ctx, r, s, nil, nil, [][]Option{
		{WithPredicate(Intersects())},
		{WithPredicate(WithinDistance(0.01))},
	})
	if !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("mixed-ε batch err = %v, want ErrBatchMismatch", err)
	}

	_, err = JoinBatch(ctx, r, s, nil, nil, [][]Option{
		{WithStream(func(Pair) {})},
	})
	if !errors.Is(err, ErrBatchStream) {
		t.Fatalf("streaming batch err = %v, want ErrBatchStream", err)
	}

	big := make([][]Option, MaxBatchItems+1)
	for i := range big {
		big[i] = []Option{WithPredicate(Intersects())}
	}
	_, err = JoinBatch(ctx, r, s, nil, nil, big)
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch err = %v, want ErrBatchTooLarge", err)
	}

	if outs, err := JoinBatch(ctx, r, s, nil, nil, nil); err != nil || outs != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", outs, err)
	}
}

// TestJoinBatchCancellation: a cancelled context surfaces from the
// shared pipeline.
func TestJoinBatchCancellation(t *testing.T) {
	r, s, _ := batchTestRelations(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := JoinBatch(ctx, r, s, r.NewSession(), s.NewSession(), [][]Option{
		{WithPredicate(Intersects())},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
