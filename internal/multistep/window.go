package multistep

import (
	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
)

// WindowStats reports the work of one multi-step window query.
type WindowStats struct {
	Candidates      int64 // objects whose MBR intersects the window
	FilterHits      int64
	FilterFalseHits int64
	ExactTested     int64
	ResultObjects   int64
	PageAccesses    int64
}

// WindowQuery runs the multi-step window query on a relation: the R*-tree
// delivers the objects whose MBRs intersect the window, the geometric
// filter decides most of them on approximations, and the rest are decided
// by the exact polygon–rectangle test. This is the query framework of
// [KBS 93, BHKS 93] on which section 2.4 builds the join processor; it
// shares every component with the join. The result is the list of object
// IDs whose regions intersect w.
//
// WindowQuery accounts on the shared tree buffer (reset first) — the
// sequential single-query mode. For concurrent queries use
// WindowQueryAccess with a per-query session.
func WindowQuery(r *Relation, w geom.Rect, cfg Config) ([]int32, WindowStats) {
	r.Tree.Buffer().ResetCounters()
	return WindowQueryAccess(r, r.Tree.Buffer(), w, cfg)
}

// WindowQueryAccess is WindowQuery with page visits routed through an
// explicit access context; PageAccesses reports the misses the query
// added to it. With per-query sessions (Relation.NewSession) any number
// of window queries may run concurrently on the same relation, each with
// isolated statistics.
func WindowQueryAccess(r *Relation, ax storage.Accessor, w geom.Rect, cfg Config) ([]int32, WindowStats) {
	var st WindowStats
	var out []int32
	missesBefore := ax.Misses()
	r.Tree.WindowQueryAccess(ax, w, func(it rstar.Item) {
		st.Candidates++
		o := r.Objects[it.ID]
		if cfg.UseFilter {
			switch cfg.Filter.ClassifyWindow(o.Approx, w) {
			case approx.Hit:
				st.FilterHits++
				out = append(out, o.ID)
				return
			case approx.FalseHit:
				st.FilterFalseHits++
				return
			}
		}
		st.ExactTested++
		var c = &Stats{} // scratch counter sink; window queries report counts only
		if exact.IntersectsRectExact(o.Prepared(), w, &c.Ops) {
			out = append(out, o.ID)
		}
	})
	st.PageAccesses = ax.Misses() - missesBefore
	st.ResultObjects = int64(len(out))
	return out, st
}

// PointQuery runs the multi-step point query: the degenerate window query
// at a single point (shared-buffer accounting; see WindowQuery).
func PointQuery(r *Relation, p geom.Point, cfg Config) ([]int32, WindowStats) {
	return WindowQuery(r, geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, cfg)
}

// PointQueryAccess is PointQuery with an explicit access context (see
// WindowQueryAccess).
func PointQueryAccess(r *Relation, ax storage.Accessor, p geom.Point, cfg Config) ([]int32, WindowStats) {
	return WindowQueryAccess(r, ax, geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, cfg)
}
