package multistep

// WindowStats reports the work of one multi-step window, point, ε-range
// or nearest query (see Query; for nearest queries only the candidate,
// exact-test, result and page-access fields apply).
type WindowStats struct {
	Candidates      int64 // objects whose MBR satisfies the step 1 predicate
	FilterHits      int64
	FilterFalseHits int64
	ExactTested     int64
	ResultObjects   int64
	PageAccesses    int64
}
