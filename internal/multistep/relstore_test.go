package multistep

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/storage"
)

// buildPair generates two small relations under cfg, the paper's
// strategy A shape.
func buildPair(cfg Config) (*Relation, *Relation) {
	base := data.GenerateMap(data.MapConfig{Cells: 70, TargetVerts: 40, HoleFraction: 0.1, Seed: 677})
	shifted := data.StrategyA(base, 0.45)
	return NewRelation("R", base, cfg), NewRelation("S", shifted, cfg)
}

// saveOpen round-trips a relation through the store format.
func saveOpen(t *testing.T, rel *Relation, cfg Config) *Relation {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveRelation(&buf, rel, cfg); err != nil {
		t.Fatalf("SaveRelation: %v", err)
	}
	got, err := OpenRelation(&buf, cfg)
	if err != nil {
		t.Fatalf("OpenRelation: %v", err)
	}
	return got
}

// TestRelationStoreRoundTripEquivalence is the acceptance criterion of
// the pluggable-store refactor: a reopened relation joins with the
// identical response set AND identical Stats — including the buffer
// hit/miss counts of the counting store — as the relation it was saved
// from, across all three exact engines.
func TestRelationStoreRoundTripEquivalence(t *testing.T) {
	for _, engine := range []Engine{EngineQuadratic, EnginePlaneSweep, EngineTRStar} {
		t.Run(engine.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Engine = engine
			r, s := buildPair(cfg)

			// Save before joining: the store captures the
			// post-construction buffer state that the in-memory join
			// starts from.
			var rBuf, sBuf bytes.Buffer
			if err := SaveRelation(&rBuf, r, cfg); err != nil {
				t.Fatalf("SaveRelation(R): %v", err)
			}
			if err := SaveRelation(&sBuf, s, cfg); err != nil {
				t.Fatalf("SaveRelation(S): %v", err)
			}

			wantPairs, wantStats := testJoin(t, r, s, cfg)

			r2, err := OpenRelation(&rBuf, cfg)
			if err != nil {
				t.Fatalf("OpenRelation(R): %v", err)
			}
			s2, err := OpenRelation(&sBuf, cfg)
			if err != nil {
				t.Fatalf("OpenRelation(S): %v", err)
			}
			if r2.Name != "R" || s2.Name != "S" {
				t.Errorf("names %q, %q after reopen", r2.Name, s2.Name)
			}
			gotPairs, gotStats := testJoin(t, r2, s2, cfg)

			if !reflect.DeepEqual(gotPairs, wantPairs) {
				t.Errorf("response set differs after reopen: %d pairs, want %d", len(gotPairs), len(wantPairs))
			}
			if gotStats != wantStats {
				t.Errorf("stats differ after reopen:\n got %+v\nwant %+v", gotStats, wantStats)
			}
			if len(wantPairs) == 0 {
				t.Fatal("degenerate test: empty response set")
			}
		})
	}
}

// TestRelationStoreStreamEquivalence runs the reopened relations through
// the parallel streaming pipeline: statistics must still match the
// in-memory build exactly.
func TestRelationStoreStreamEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	r, s := buildPair(cfg)
	var rBuf, sBuf bytes.Buffer
	if err := SaveRelation(&rBuf, r, cfg); err != nil {
		t.Fatal(err)
	}
	if err := SaveRelation(&sBuf, s, cfg); err != nil {
		t.Fatal(err)
	}
	wantStats := testJoinStream(t, r, s, cfg, StreamOptions{Workers: 3}, nil)

	r2, err := OpenRelation(&rBuf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenRelation(&sBuf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotStats := testJoinStream(t, r2, s2, cfg, StreamOptions{Workers: 3}, nil)
	if gotStats != wantStats {
		t.Errorf("streaming stats differ after reopen:\n got %+v\nwant %+v", gotStats, wantStats)
	}
}

// TestRelationStoreWindowQuery checks the window-query path on a
// reopened relation.
func TestRelationStoreWindowQuery(t *testing.T) {
	cfg := DefaultConfig()
	r, _ := buildPair(cfg)
	var buf bytes.Buffer
	if err := SaveRelation(&buf, r, cfg); err != nil {
		t.Fatal(err)
	}
	w := r.Objects[3].Approx.MBR
	wantIDs, wantStats := testWindow(t, r, w, cfg)

	r2, err := OpenRelation(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotStats := testWindow(t, r2, w, cfg)
	if !reflect.DeepEqual(gotIDs, wantIDs) || gotStats != wantStats {
		t.Errorf("window query differs after reopen: %v/%+v, want %v/%+v", gotIDs, gotStats, wantIDs, wantStats)
	}
}

// TestRelationStoreFileRoundTrip exercises the disk-backed path:
// SaveRelationFile lays the store out on a storage.FileStore and
// OpenRelationFile reads it back page by page.
func TestRelationStoreFileRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	r, s := buildPair(cfg)
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.store")
	sPath := filepath.Join(dir, "s.store")
	if err := SaveRelationFile(rPath, r, cfg); err != nil {
		t.Fatalf("SaveRelationFile: %v", err)
	}
	if err := SaveRelationFile(sPath, s, cfg); err != nil {
		t.Fatalf("SaveRelationFile: %v", err)
	}
	wantPairs, wantStats := testJoin(t, r, s, cfg)

	r2, err := OpenRelationFile(rPath, cfg)
	if err != nil {
		t.Fatalf("OpenRelationFile: %v", err)
	}
	s2, err := OpenRelationFile(sPath, cfg)
	if err != nil {
		t.Fatalf("OpenRelationFile: %v", err)
	}
	gotPairs, gotStats := testJoin(t, r2, s2, cfg)
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Errorf("response set differs through the file store")
	}
	if gotStats != wantStats {
		t.Errorf("stats differ through the file store:\n got %+v\nwant %+v", gotStats, wantStats)
	}
}

// TestRelationStoreConfigMismatch: a store must refuse to open under a
// configuration other than the one it was built with.
func TestRelationStoreConfigMismatch(t *testing.T) {
	cfg := DefaultConfig()
	r, _ := buildPair(cfg)
	var buf bytes.Buffer
	if err := SaveRelation(&buf, r, cfg); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	for name, mutate := range map[string]func(*Config){
		"engine":       func(c *Config) { c.Engine = EngineQuadratic },
		"page size":    func(c *Config) { c.PageSize = 2048 },
		"conservative": func(c *Config) { c.Filter.Conservative = 0 /* MBR */ },
		"policy":       func(c *Config) { c.BufferPolicy = storage.Clock },
		"no filter":    func(c *Config) { c.UseFilter = false },
	} {
		other := cfg
		mutate(&other)
		if _, err := OpenRelation(bytes.NewReader(blob), other); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s changed: err = %v, want ErrConfigMismatch", name, err)
		}
	}
}

// TestRelationStoreCorruptInputs: corrupt or truncated stores must
// return errors, never panic.
func TestRelationStoreCorruptInputs(t *testing.T) {
	cfg := DefaultConfig()
	base := data.GenerateMap(data.MapConfig{Cells: 8, TargetVerts: 16, Seed: 31})
	r := NewRelation("R", base, cfg)
	var buf bytes.Buffer
	if err := SaveRelation(&buf, r, cfg); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Every prefix must fail cleanly (the full blob parses).
	for _, n := range []int{0, 1, 2, 5, 13, 16, 40, 100, len(blob) / 2, len(blob) - 1} {
		if _, err := OpenRelation(bytes.NewReader(blob[:n]), cfg); err == nil {
			t.Errorf("truncation to %d bytes: no error", n)
		}
	}
	// Trailing garbage must be rejected.
	if _, err := OpenRelation(bytes.NewReader(append(append([]byte{}, blob...), 0xFF)), cfg); err == nil {
		t.Error("trailing byte: no error")
	}
	// Flipping bytes across the blob must error or yield a fully valid
	// relation — never panic. (Flips inside polygon coordinates are
	// legitimately undetectable; structural flips must be caught.)
	for pos := 0; pos < len(blob); pos += 37 {
		mut := append([]byte{}, blob...)
		mut[pos] ^= 0x5A
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("byte flip at %d: panic %v", pos, p)
				}
			}()
			rel, err := OpenRelation(bytes.NewReader(mut), cfg)
			if err == nil && len(rel.Objects) != len(r.Objects) {
				t.Errorf("byte flip at %d: silently changed object count", pos)
			}
		}()
	}
}

// FuzzOpenRelation fuzzes the relation-store decoder: any input must
// either fail with an error or decode into a relation that re-saves
// successfully — never panic and never over-allocate.
func FuzzOpenRelation(f *testing.F) {
	cfg := DefaultConfig()
	base := data.GenerateMap(data.MapConfig{Cells: 2, TargetVerts: 8, Seed: 31})
	rel := NewRelation("seed", base, cfg)
	var buf bytes.Buffer
	if err := SaveRelation(&buf, rel, cfg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:40])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		// decodeRelation is OpenRelation minus the io.ReadAll slurp,
		// which is disproportionately slow under fuzz instrumentation.
		rel, err := decodeRelation(blob, cfg)
		if err != nil {
			return
		}
		if err := SaveRelation(&bytes.Buffer{}, rel, cfg); err != nil {
			t.Errorf("decoded relation does not re-save: %v", err)
		}
	})
}
