package mqe

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	for i := 0; i < 10; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), i, 10) {
			t.Fatalf("Put k%d rejected", i)
		}
	}
	if got := c.Bytes(); got != 100 {
		t.Fatalf("Bytes = %d, want 100", got)
	}
	// Touch k0 so it becomes most recently used, then overflow: k1 must
	// be the victim, k0 must survive.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k10", 10, 10)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as LRU")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 evicted despite recent use")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 100 || st.Entries != 10 {
		t.Fatalf("after eviction: bytes %d entries %d, want 100/10", st.Bytes, st.Entries)
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	c := NewCache(64)
	c.Put("small", 1, 32)
	if c.Put("huge", 2, 65) {
		t.Fatal("entry larger than the budget must be rejected")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("rejected oversized Put must not evict existing entries")
	}
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}
}

func TestCacheReplaceAdjustsBytes(t *testing.T) {
	c := NewCache(100)
	c.Put("k", "a", 40)
	c.Put("k", "b", 70)
	if got := c.Bytes(); got != 70 {
		t.Fatalf("Bytes after replace = %d, want 70", got)
	}
	v, ok := c.Get("k")
	if !ok || v.(string) != "b" {
		t.Fatalf("Get after replace = %v, %v", v, ok)
	}
}

// TestCacheConcurrentFillKeepsBudget hammers the cache from many
// goroutines with random entry sizes and checks the byte budget is
// never exceeded — the ISSUE's "eviction keeps the byte budget under
// concurrent fill" proof, meaningful under -race.
func TestCacheConcurrentFillKeepsBudget(t *testing.T) {
	const budget = 4096
	c := NewCache(budget)
	var wg sync.WaitGroup
	var over atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-%d", g, rng.Intn(200))
				c.Put(key, i, int64(1+rng.Intn(300)))
				if b := c.Bytes(); b > budget {
					over.Store(b)
				}
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if b := over.Load(); b != 0 {
		t.Fatalf("byte budget exceeded under concurrent fill: observed %d > %d", b, budget)
	}
	if b := c.Bytes(); b > budget {
		t.Fatalf("final bytes %d > budget %d", b, budget)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions under concurrent fill")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if c != NewCache(0) {
		t.Fatal("NewCache(0) should return nil")
	}
	if c.Put("k", 1, 1) {
		t.Fatal("nil cache retained an entry")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Bytes() != 0 || c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache stats not zero")
	}
}

func TestGroupCoalesces(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const followers = 6
	var wg sync.WaitGroup
	results := make([]any, followers+1)
	flags := make([]bool, followers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], flags[0], _ = g.Do("k", func() (any, error) {
			execs.Add(1)
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], flags[i], _ = g.Do("k", func() (any, error) {
				execs.Add(1)
				return 42, nil
			})
		}(i)
	}
	// Let the followers register against the in-flight call. Their Do
	// blocks on the leader, so all we need is for each goroutine to have
	// entered Do; polling the coalesce counter is deterministic here
	// because the leader cannot finish until release is closed.
	for g.Coalesced() < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if flags[0] {
		t.Fatal("leader reported coalesced")
	}
	for i := 1; i <= followers; i++ {
		if !flags[i] {
			t.Fatalf("follower %d not reported coalesced", i)
		}
		if results[i] != 42 {
			t.Fatalf("follower %d result = %v", i, results[i])
		}
	}
	// The key must be forgotten after completion: a fresh call executes.
	_, coalesced, _ := g.Do("k", func() (any, error) { execs.Add(1); return 7, nil })
	if coalesced || execs.Load() != 2 {
		t.Fatal("completed flight was not forgotten")
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group
	wantErr := errors.New("boom")
	_, _, err := g.Do("k", func() (any, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestBatcherGroupsWithinWindow(t *testing.T) {
	b := NewBatcher(150 * time.Millisecond)
	var runs atomic.Int64
	run := func(reqs []any) ([]any, error) {
		runs.Add(1)
		out := make([]any, len(reqs))
		for i, r := range reqs {
			out[i] = r.(int) * 10
		}
		return out, nil
	}

	const n = 4
	var wg sync.WaitGroup
	got := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger arrivals well inside the window.
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
			v, err := b.Run("pair", i, run)
			if err != nil {
				t.Errorf("Run(%d): %v", i, err)
				return
			}
			got[i] = v
		}(i)
	}
	wg.Wait()

	if r := runs.Load(); r != 1 {
		t.Fatalf("run executed %d times, want 1 batch", r)
	}
	for i := 0; i < n; i++ {
		if got[i] != i*10 {
			t.Fatalf("request %d got %v, want %d", i, got[i], i*10)
		}
	}
	st := b.Stats()
	if st.Groups != 1 || st.Batched != n {
		t.Fatalf("stats = %+v, want 1 group / %d batched", st, n)
	}

	// After sealing, a new request opens a fresh batch.
	v, err := b.Run("pair", 9, run)
	if err != nil || v != 90 {
		t.Fatalf("post-seal Run = %v, %v", v, err)
	}
	if runs.Load() != 2 {
		t.Fatal("post-seal request did not run fresh")
	}
}

func TestBatcherDistinctKeysDoNotShare(t *testing.T) {
	b := NewBatcher(80 * time.Millisecond)
	var runs atomic.Int64
	run := func(reqs []any) ([]any, error) {
		runs.Add(1)
		return reqs, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Run(fmt.Sprintf("k%d", i), i, run); err != nil {
				t.Errorf("Run: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if r := runs.Load(); r != 2 {
		t.Fatalf("distinct keys ran %d batches, want 2", r)
	}
}

func TestBatcherZeroWindowRunsImmediately(t *testing.T) {
	b := NewBatcher(0)
	v, err := b.Run("k", 3, func(reqs []any) ([]any, error) {
		if len(reqs) != 1 {
			t.Fatalf("len(reqs) = %d", len(reqs))
		}
		return []any{reqs[0].(int) + 1}, nil
	})
	if err != nil || v != 4 {
		t.Fatalf("Run = %v, %v", v, err)
	}
	var nilB *Batcher
	v, err = b.Run("k", 1, func(reqs []any) ([]any, error) { return []any{2}, nil })
	if err != nil || v != 2 {
		t.Fatalf("Run = %v, %v", v, err)
	}
	v, err = nilB.Run("k", 1, func(reqs []any) ([]any, error) { return []any{5}, nil })
	if err != nil || v != 5 {
		t.Fatalf("nil batcher Run = %v, %v", v, err)
	}
}

func TestBatcherErrorReachesAllMembers(t *testing.T) {
	b := NewBatcher(100 * time.Millisecond)
	wantErr := errors.New("traversal failed")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 5 * time.Millisecond)
			_, errs[i] = b.Run("k", i, func(reqs []any) ([]any, error) { return nil, wantErr })
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("member %d err = %v, want %v", i, err, wantErr)
		}
	}
}
