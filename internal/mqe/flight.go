package mqe

import "sync"

// Group coalesces concurrent calls with the same key into a single
// execution (single flight): the first caller for a key becomes the
// leader and runs fn; callers that arrive while the leader is in
// flight block and receive the leader's value and error. Once the
// leader finishes, the key is forgotten — a later call executes fresh,
// so the group never serves stale results (that is the cache's job).
//
// The zero Group is ready to use.
type Group struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	coalesced int64
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do executes fn under key with single-flight semantics. The second
// result reports whether this caller was a follower (received a result
// computed by a concurrent leader) rather than running fn itself.
func (g *Group) Do(key string, fn func() (any, error)) (val any, coalesced bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Coalesced returns how many calls were served as followers of another
// caller's execution since the group was created.
func (g *Group) Coalesced() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}
