// Package mqe implements the multi-query execution primitives used by
// the serving layer: a byte-bounded LRU result cache, single-flight
// coalescing of identical in-flight requests, and a batching window
// that groups concurrent requests for shared-work execution.
//
// The package is deliberately storage- and query-agnostic: keys are
// opaque strings (the serving layer normalizes them from relation
// fingerprints, predicate, target and plan mode), values are opaque
// interfaces, and entry sizes are supplied by the caller. That keeps
// mqe reusable for both whole-response caching and per-tile sub-result
// caching, which share one byte budget.
package mqe

import (
	"container/list"
	"sync"
)

// Cache is a size-bounded LRU cache. The bound is in bytes, not
// entries: every Put carries the caller's estimate of the entry's
// retained size, and the cache evicts least-recently-used entries
// until the running total fits the budget again. An entry larger than
// the whole budget is rejected outright rather than evicting
// everything else.
//
// Cache is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key   string
	val   any
	bytes int64
}

// NewCache returns a cache bounded to maxBytes. maxBytes <= 0 returns
// nil: a nil *Cache is a valid always-miss cache, so callers can thread
// one pointer through without guarding every call site.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the value cached under key and marks it most recently
// used. The second result reports whether the key was present.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, charging size bytes against the budget,
// and evicts LRU entries until the total fits. Re-putting an existing
// key replaces its value and size. Entries larger than the budget are
// dropped (the cache is left untouched). It reports whether the entry
// was retained.
func (c *Cache) Put(key string, val any, size int64) bool {
	if c == nil {
		return false
	}
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.max {
		return false
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.bytes
		ent.val, ent.bytes = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		c.evictOldest()
	}
	return true
}

// evictOldest removes the LRU entry. Caller holds c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.bytes
	c.evictions++
}

// Bytes returns the current charged size of all entries.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// CacheStats is a point-in-time snapshot of the cache counters, shaped
// for direct JSON exposure on the serving stats endpoint.
type CacheStats struct {
	MaxBytes  int64 `json:"maxBytes"`
	Bytes     int64 `json:"bytes"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		MaxBytes:  c.max,
		Bytes:     c.bytes,
		Entries:   len(c.items),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
