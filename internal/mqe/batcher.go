package mqe

import (
	"sync"
	"time"
)

// Batcher groups concurrent Run calls that share a key into batches:
// the first caller for a key opens a batch and waits for the batching
// window to elapse; callers arriving within the window join the batch.
// When the window closes the batch is sealed (later arrivals open a
// new one) and the opener executes run once over every collected
// request, then each caller receives its own result by position.
//
// Unlike Group, callers with *different* payloads share one execution —
// this is the entry point for shared-work multi-query execution, where
// run performs one synchronized traversal for all requests over the
// same relation pair.
//
// A window <= 0 disables batching: Run executes immediately with a
// single-request batch.
type Batcher struct {
	window time.Duration

	mu      sync.Mutex
	pending map[string]*batch

	groups  int64 // batches executed
	batched int64 // requests that shared a batch with at least one other
}

type batch struct {
	reqs    []any
	done    chan struct{}
	results []any
	err     error
}

// NewBatcher returns a Batcher with the given batching window.
func NewBatcher(window time.Duration) *Batcher {
	return &Batcher{window: window, pending: make(map[string]*batch)}
}

// Run submits req under key and returns this request's result from the
// batched execution. run receives the batch's requests in arrival
// order and must return one result per request, in the same order; if
// it errors, every caller in the batch receives that error.
func (b *Batcher) Run(key string, req any, run func(reqs []any) ([]any, error)) (any, error) {
	if b == nil || b.window <= 0 {
		res, err := run([]any{req})
		if err != nil {
			return nil, err
		}
		if b != nil {
			b.mu.Lock()
			b.groups++
			b.mu.Unlock()
		}
		return res[0], nil
	}

	b.mu.Lock()
	if bt, ok := b.pending[key]; ok {
		idx := len(bt.reqs)
		bt.reqs = append(bt.reqs, req)
		b.mu.Unlock()
		<-bt.done
		if bt.err != nil {
			return nil, bt.err
		}
		return bt.results[idx], nil
	}
	bt := &batch{reqs: []any{req}, done: make(chan struct{})}
	b.pending[key] = bt
	b.mu.Unlock()

	time.Sleep(b.window)

	// Seal: arrivals from here on open a fresh batch.
	b.mu.Lock()
	delete(b.pending, key)
	reqs := bt.reqs
	b.groups++
	if len(reqs) > 1 {
		b.batched += int64(len(reqs))
	}
	b.mu.Unlock()

	bt.results, bt.err = run(reqs)
	if bt.err == nil && len(bt.results) != len(reqs) {
		bt.err = errBatchSize
	}
	close(bt.done)
	if bt.err != nil {
		return nil, bt.err
	}
	return bt.results[0], nil
}

// BatcherStats is a snapshot of the batching counters.
type BatcherStats struct {
	Groups  int64 `json:"groups"`
	Batched int64 `json:"batchedRequests"`
}

// Stats returns a snapshot of the batching counters. Batched counts
// only requests that actually shared a batch with another request.
func (b *Batcher) Stats() BatcherStats {
	if b == nil {
		return BatcherStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatcherStats{Groups: b.groups, Batched: b.batched}
}

type batchSizeError struct{}

func (batchSizeError) Error() string {
	return "mqe: batch run returned wrong result count"
}

var errBatchSize = batchSizeError{}
