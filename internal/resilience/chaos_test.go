package resilience_test

// The chaos suite: mixed query load against a live serve.Handler with
// the fault harness armed at every site at once. It proves the three
// resilience contracts end to end, under the race detector:
//
//  1. the process survives — injected panics, errors, latency and page
//     corruption never take the server down;
//  2. responses that dodge injection are byte-identical to solo runs —
//     faults never leak into results that claim to be complete;
//  3. every shed, timed-out, degraded or failed response is well-formed
//     JSON with the documented shape.
//
// The test lives outside package serve so it exercises the public
// surface the way cmd/spatialjoinserve wires it.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/serve"
	"spatialjoin/internal/shard"
)

// chaosServer builds a 4-tile two-relation catalog behind a fully
// configured resilience envelope.
func chaosServer(t testing.TB) *httptest.Server {
	t.Helper()
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = 8192
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)
	cat := serve.NewCatalog()
	cat.AddSharded("R", shard.Build("R", rp, 4, cfg), cfg)
	cat.AddSharded("S", shard.Build("S", sp, 4, cfg), cfg)
	srv := serve.NewServer(cat)
	// Cache off: every storm request must walk the full pipeline past
	// the injection sites instead of replaying the baseline pass.
	srv.CacheBytes = 0
	srv.MaxInFlight = 4
	srv.MaxQueue = 2
	srv.QueueWait = 50 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// chaosRequest is one request shape of the storm: the URL fired under
// faults and the strict URL whose solo body a clean 200 must match.
type chaosRequest struct {
	url  string // fired during the storm (may carry partial/timeout_ms)
	base string // canonical strict URL for the byte-identity check
}

func chaosRequests() []chaosRequest {
	strict := []string{
		"/window?rel=R&minx=-1&miny=-1&maxx=2&maxy=2",
		"/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4",
		"/window?rel=S&minx=0.1&miny=0.5&maxx=0.6&maxy=0.9",
		"/point?rel=R&x=0.31&y=0.47",
		"/nearest?rel=R&x=0.31&y=0.47&k=3",
		"/join?r=R&s=S&limit=50",
	}
	var reqs []chaosRequest
	for _, u := range strict {
		reqs = append(reqs, chaosRequest{url: u, base: u})
		if !strings.HasPrefix(u, "/join") {
			// Degradable variants; a partial response that lost no tiles
			// is byte-identical to the strict run.
			reqs = append(reqs, chaosRequest{url: u + "&partial=1", base: u})
		}
		reqs = append(reqs, chaosRequest{url: u + "&timeout_ms=30000", base: u})
	}
	return reqs
}

// stripMarkers drops the multi-query execution markers ("cached": true
// / "coalesced": true) whose presence is the only allowed difference
// from a solo run.
func stripMarkers(body string) string {
	lines := strings.Split(body, "\n")
	out := lines[:0]
	for _, ln := range lines {
		if strings.Contains(ln, `"cached": true`) || strings.Contains(ln, `"coalesced": true`) {
			continue
		}
		out = append(out, ln)
	}
	return strings.Join(out, "\n")
}

func fetch(t testing.TB, base, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(base + url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// chaosBody is the superset of every response shape the storm can see.
type chaosBody struct {
	Error       string `json:"error"`
	Incident    string `json:"incident"`
	Degraded    bool   `json:"degraded"`
	FailedTiles []struct {
		Tile int    `json:"tile"`
		Err  string `json:"err"`
	} `json:"failedTiles"`
}

func TestChaos(t *testing.T) {
	fault.Disarm()
	ts := chaosServer(t)
	reqs := chaosRequests()

	// Solo baselines, faults disarmed.
	baseline := make(map[string]string)
	for _, r := range reqs {
		if _, ok := baseline[r.base]; ok {
			continue
		}
		status, _, body := fetch(t, ts.URL, r.base)
		if status != http.StatusOK {
			t.Fatalf("baseline GET %s: status %d: %s", r.base, status, body)
		}
		baseline[r.base] = stripMarkers(body)
	}

	// Every site armed at once. The primes keep the sites' firing
	// patterns out of phase so the storm sees mixed, not synchronized,
	// failure modes; deterministic counters keep the run reproducible.
	if err := fault.Arm("tile-query:latency=5ms@7,tile-query:error@31,tile-join:panic@29,exact:error@43,page-read:corrupt@97"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disarm)

	const (
		workers     = 8
		perWorker   = 30
		statusOK    = http.StatusOK
		statusShed  = http.StatusTooManyRequests
		statusSlow  = http.StatusGatewayTimeout
		statusBoom  = http.StatusInternalServerError
		statusBusy3 = http.StatusServiceUnavailable
	)
	var (
		mu     sync.Mutex
		counts = map[int]int{}
		fails  []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(fails) < 20 {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := reqs[(w*perWorker+i*13)%len(reqs)]
				status, hdr, body := fetch(t, ts.URL, r.url)
				mu.Lock()
				counts[status]++
				mu.Unlock()
				var cb chaosBody
				if err := json.Unmarshal([]byte(body), &cb); err != nil {
					report("GET %s: status %d, body is not JSON: %v", r.url, status, err)
					continue
				}
				switch status {
				case statusOK:
					if cb.Degraded {
						if len(cb.FailedTiles) == 0 {
							report("GET %s: degraded without failed tiles", r.url)
						}
						continue
					}
					if got := stripMarkers(body); got != baseline[r.base] {
						report("GET %s: non-injected 200 diverged from solo run", r.url)
					}
				case statusShed:
					if cb.Error == "" || hdr.Get("Retry-After") == "" {
						report("GET %s: malformed 429 (error %q, Retry-After %q)", r.url, cb.Error, hdr.Get("Retry-After"))
					}
				case statusSlow:
					if !strings.Contains(cb.Error, "deadline") {
						report("GET %s: 504 body %q does not explain the deadline", r.url, cb.Error)
					}
				case statusBoom:
					// Injected errors, page corruption, or a contained panic
					// (which must carry its incident ID).
					if cb.Error == "" {
						report("GET %s: 500 with empty error", r.url)
					}
					if strings.Contains(cb.Error, "incident") && cb.Incident == "" {
						report("GET %s: panic 500 without incident field: %s", r.url, body)
					}
				case statusBusy3:
					report("GET %s: unexpected 503: %s", r.url, cb.Error)
				default:
					report("GET %s: unexpected status %d: %s", r.url, status, body)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, f := range fails {
		t.Error(f)
	}
	t.Logf("chaos storm outcomes by status: %v", counts)
	if counts[statusOK] == 0 {
		t.Error("no request of the storm succeeded")
	}
	if counts[statusBoom] == 0 {
		t.Error("no injected failure surfaced — the storm did not exercise the faults")
	}

	// The server must come out healthy: faults off, every baseline URL
	// answers byte-identically — nothing degraded or corrupt was cached.
	fault.Disarm()
	for u, want := range baseline {
		status, _, body := fetch(t, ts.URL, u)
		if status != http.StatusOK {
			t.Fatalf("post-storm GET %s: status %d: %s", u, status, body)
		}
		if stripMarkers(body) != want {
			t.Errorf("post-storm GET %s diverged from the pre-storm solo run", u)
		}
	}

	// /stats must still parse and reflect the storm.
	status, _, body := fetch(t, ts.URL, "/stats")
	if status != http.StatusOK {
		t.Fatalf("post-storm /stats: status %d", status)
	}
	var st struct {
		Admission struct {
			Admitted int64 `json:"admitted"`
		} `json:"admission"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("post-storm /stats is not JSON: %v", err)
	}
	if st.Admission.Admitted == 0 {
		t.Error("admission stats recorded no admitted requests")
	}
}
