// Package resilience is the serving stack's failure-containment
// toolkit (DESIGN.md §14): panic capture with incident IDs at request
// and sub-task boundaries, and a concurrency limiter with a bounded
// wait queue for admission control. The companion package
// resilience/fault injects the failures these primitives must contain.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// PanicError is a recovered panic promoted to an error: the request
// that hit it fails with an incident ID while the process keeps
// serving. The stack is captured at recovery time, so the incident log
// points at the faulty traversal, not at the HTTP handler.
type PanicError struct {
	// Incident is the ID logged with the stack and echoed to the
	// client, correlating a 500 response with the server-side log line.
	Incident string
	// Site names the recovery boundary ("tile-query", "join", …).
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic at %s (incident %s): %v", e.Site, e.Incident, e.Value)
}

// incidentSeq numbers incidents within this process; the boot stamp
// makes IDs unique across restarts.
var (
	incidentSeq  atomic.Int64
	incidentBoot = time.Now().UnixNano() & 0xffffffff
)

// NewIncidentID returns a fresh process-unique incident ID.
func NewIncidentID() string {
	return fmt.Sprintf("%08x-%06d", incidentBoot, incidentSeq.Add(1))
}

// Recovered wraps a recovered panic value as a PanicError with a fresh
// incident ID and the current stack.
func Recovered(site string, v any) *PanicError {
	return &PanicError{Incident: NewIncidentID(), Site: site, Value: v, Stack: debug.Stack()}
}

// RecoverTo is the sub-task recovery boundary, used as
//
//	defer resilience.RecoverTo(&err, "tile-query")
//
// A panic below the deferring function becomes a *PanicError in *errp
// (existing errors are not overwritten — the panic is the root cause,
// so it wins) and the goroutine survives.
func RecoverTo(errp *error, site string) {
	if r := recover(); r != nil {
		*errp = Recovered(site, r)
	}
}

// AsPanic unwraps err to its PanicError, if it is one.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// ErrSaturated reports a request shed by admission control: every
// execution slot is busy and the wait queue is full (or the queue wait
// timed out). The HTTP layer maps it to 429 with Retry-After.
var ErrSaturated = errors.New("resilience: server saturated, request shed")

// Limiter is the admission controller: at most MaxInFlight requests
// execute at once, at most MaxQueue more wait up to QueueWait for a
// slot, and everything beyond is shed immediately. A nil *Limiter
// admits everything (no admission control configured).
type Limiter struct {
	maxQueue  int
	queueWait time.Duration
	slots     chan struct{}

	inflight atomic.Int64
	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewLimiter builds an admission controller. maxInFlight must be
// positive; maxQueue ≤ 0 means no waiting (immediate shed when all
// slots are busy); queueWait ≤ 0 with a positive maxQueue waits only
// for the request's own context.
func NewLimiter(maxInFlight, maxQueue int, queueWait time.Duration) *Limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		maxQueue:  maxQueue,
		queueWait: queueWait,
		slots:     make(chan struct{}, maxInFlight),
	}
}

// Acquire admits the request or sheds it. On admission it returns a
// release function the caller must invoke when the request finishes.
// It returns ErrSaturated when the request is shed, or ctx.Err() when
// the client gave up while queued. On a nil limiter it admits
// unconditionally.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	select {
	case l.slots <- struct{}{}:
		return l.admit(), nil
	default:
	}
	// All slots busy: queue if there is room, else shed now.
	if l.queued.Add(1) > int64(l.maxQueue) {
		l.queued.Add(-1)
		l.shed.Add(1)
		return nil, ErrSaturated
	}
	defer l.queued.Add(-1)
	var timeout <-chan time.Time
	if l.queueWait > 0 {
		t := time.NewTimer(l.queueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case l.slots <- struct{}{}:
		return l.admit(), nil
	case <-timeout:
		l.shed.Add(1)
		return nil, ErrSaturated
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *Limiter) admit() func() {
	l.admitted.Add(1)
	l.inflight.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			l.inflight.Add(-1)
			<-l.slots
		}
	}
}

// LimiterStats is the admission controller's /stats row.
type LimiterStats struct {
	// MaxInFlight and MaxQueue echo the configured bounds.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// InFlight and Queued are instantaneous gauges; Admitted and Shed
	// are lifetime counters.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// Stats snapshots the limiter's counters; the zero value on nil.
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	return LimiterStats{
		MaxInFlight: cap(l.slots),
		MaxQueue:    l.maxQueue,
		InFlight:    l.inflight.Load(),
		Queued:      l.queued.Load(),
		Admitted:    l.admitted.Load(),
		Shed:        l.shed.Load(),
	}
}
