package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecoverToCapturesPanic(t *testing.T) {
	err := func() (err error) {
		defer RecoverTo(&err, "tile-query")
		panic("boom")
	}()
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Site != "tile-query" || pe.Value != "boom" || pe.Incident == "" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), pe.Incident) {
		t.Fatalf("Error() %q does not carry the incident ID", pe.Error())
	}
}

func TestRecoverToNoPanicLeavesError(t *testing.T) {
	base := errors.New("original")
	err := func() (err error) {
		defer RecoverTo(&err, "s")
		return base
	}()
	if err != base {
		t.Fatalf("err = %v, want the original", err)
	}
}

func TestAsPanicUnwraps(t *testing.T) {
	pe := Recovered("s", 42)
	wrapped := fmt.Errorf("tile 3: %w", pe)
	got, ok := AsPanic(wrapped)
	if !ok || got != pe {
		t.Fatalf("AsPanic(wrapped) = %v, %t", got, ok)
	}
	if _, ok := AsPanic(errors.New("plain")); ok {
		t.Fatal("AsPanic matched a plain error")
	}
}

func TestIncidentIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewIncidentID()
		if seen[id] {
			t.Fatalf("duplicate incident ID %s", id)
		}
		seen[id] = true
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	release()
	if st := l.Stats(); st != (LimiterStats{}) {
		t.Fatalf("nil Stats() = %+v", st)
	}
}

func TestLimiterShedsBeyondQueue(t *testing.T) {
	l := NewLimiter(1, 0, 0)
	rel1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second Acquire err = %v, want ErrSaturated", err)
	}
	rel1()
	rel2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	rel2()
	st := l.Stats()
	if st.Admitted != 2 || st.Shed != 1 || st.InFlight != 0 {
		t.Fatalf("Stats() = %+v", st)
	}
}

func TestLimiterQueueWaitTimesOut(t *testing.T) {
	l := NewLimiter(1, 1, 20*time.Millisecond)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	t0 := time.Now()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("queued Acquire err = %v, want ErrSaturated", err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("shed after %v, want to wait ~20ms first", d)
	}
	if st := l.Stats(); st.Queued != 0 {
		t.Fatalf("Queued = %d after timed-out wait, want 0", st.Queued)
	}
}

func TestLimiterQueueHandoff(t *testing.T) {
	l := NewLimiter(1, 1, time.Second)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := l.Acquire(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the second request queue
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued Acquire: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued request never admitted")
	}
}

func TestLimiterClientCancelWhileQueued(t *testing.T) {
	l := NewLimiter(1, 1, time.Minute)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire err = %v, want context.Canceled", err)
	}
	// A client abandoning the queue is not a shed.
	if st := l.Stats(); st.Shed != 0 {
		t.Fatalf("Shed = %d, want 0", st.Shed)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(2, 0, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	if st := l.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after double release, want 0", st.InFlight)
	}
}

func TestLimiterConcurrentBound(t *testing.T) {
	const maxIn = 4
	l := NewLimiter(maxIn, 64, time.Second)
	var wg sync.WaitGroup
	var over sync.Mutex
	var inflight, maxSeen int
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				return
			}
			over.Lock()
			inflight++
			if inflight > maxSeen {
				maxSeen = inflight
			}
			over.Unlock()
			time.Sleep(time.Millisecond)
			over.Lock()
			inflight--
			over.Unlock()
			release()
		}()
	}
	wg.Wait()
	if maxSeen > maxIn {
		t.Fatalf("observed %d concurrent holders, limit %d", maxSeen, maxIn)
	}
}
