// Package fault is the repository's fault-injection harness: named
// injection sites in the serving pipeline call Check, and a test (or an
// operator armed via the -faults flag) injects latency, errors, panics
// or page corruption at those sites to prove the resilience layer
// contains them.
//
// The package is built to be free when idle: a disarmed Check is one
// atomic load and nothing else, so the sites stay compiled into
// production binaries. Injection is deterministic — every injection
// fires on an every-Nth counter, never on a random draw — so chaos
// runs are reproducible.
//
// Sites are registered here, not at the call sites, so the spec parser
// can reject typos and the docs have one registry to point at:
//
//	tile-query  one tile's sub-query in the scatter-gather fan-out
//	tile-join   one tile pair's sub-join (solo or batched traversal)
//	page-read   one disk page read of a storage session (corrupt only
//	            errors and delays here: disk reads fail, they don't
//	            panic)
//	exact       one exact-geometry decision in the join pipeline's
//	            step 3 worker or a query's exact branch
//
// The spec grammar armed by Arm (and cmd/spatialjoinserve -faults):
//
//	spec     = injection *("," injection)
//	injection = site ":" kind ["=" param] ["@" every]
//	kind     = "latency" (param: Go duration, default 10ms)
//	         | "error" | "panic" | "corrupt"
//	every    = positive integer N: fire on every Nth Check (default 1)
//
// Example: "tile-query:latency=5ms@3,exact:panic@97,page-read:corrupt@11".
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what an injection does when it fires.
type Kind int

const (
	// Latency sleeps for the injection's duration, then lets the
	// operation proceed.
	Latency Kind = iota
	// Error makes Check return ErrInjected.
	Error
	// Panic makes Check panic — the panic-isolation proof.
	Panic
	// Corrupt makes Check return ErrCorrupted, modelling a page that
	// read back damaged (valid at the page-read site only).
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Sentinel errors of fired injections. ErrCorrupted wraps ErrInjected,
// so errors.Is(err, ErrInjected) recognizes every injected failure.
var (
	ErrInjected  = errors.New("fault: injected error")
	ErrCorrupted = fmt.Errorf("injected page corruption: %w", ErrInjected)
)

// IsInjected reports whether err originates from a fired injection.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Sites returns the registered site names, sorted — the fault-site
// registry DESIGN.md documents.
func Sites() []string {
	out := make([]string, 0, len(siteRegistry))
	for s := range siteRegistry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// siteRegistry maps each site to the kinds valid there.
var siteRegistry = map[string]map[Kind]bool{
	"tile-query": {Latency: true, Error: true, Panic: true},
	"tile-join":  {Latency: true, Error: true, Panic: true},
	"page-read":  {Latency: true, Error: true, Corrupt: true},
	"exact":      {Latency: true, Error: true, Panic: true},
}

// injection is one armed fault.
type injection struct {
	site    string
	kind    Kind
	latency time.Duration
	every   int64

	checks atomic.Int64 // Checks at the site routed through this injection
	fired  atomic.Int64
}

// armed is the fast gate: Check loads it once and returns when the
// harness is disarmed, so production requests pay one atomic load.
var armed atomic.Bool

var (
	mu    sync.Mutex
	plans map[string][]*injection // site → armed injections
)

// Arm parses a spec and arms its injections, replacing any previous
// arming. An empty spec is a no-op. Unknown sites, kinds invalid at a
// site, and malformed parameters are rejected with the whole spec left
// disarmed.
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	next := make(map[string][]*injection)
	for _, part := range strings.Split(spec, ",") {
		inj, err := parseInjection(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		next[inj.site] = append(next[inj.site], inj)
	}
	mu.Lock()
	plans = next
	mu.Unlock()
	armed.Store(true)
	return nil
}

func parseInjection(part string) (*injection, error) {
	site, rest, ok := strings.Cut(part, ":")
	if !ok {
		return nil, fmt.Errorf("fault: %q: want site:kind[=param][@every]", part)
	}
	kinds, okSite := siteRegistry[site]
	if !okSite {
		return nil, fmt.Errorf("fault: unknown site %q (sites: %s)", site, strings.Join(Sites(), ", "))
	}
	rest, everyStr, hasEvery := strings.Cut(rest, "@")
	kindStr, param, hasParam := strings.Cut(rest, "=")
	inj := &injection{site: site, every: 1}
	switch kindStr {
	case "latency":
		inj.kind = Latency
		inj.latency = 10 * time.Millisecond
		if hasParam {
			d, err := time.ParseDuration(param)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: %q: bad latency %q", part, param)
			}
			inj.latency = d
		}
	case "error":
		inj.kind = Error
	case "panic":
		inj.kind = Panic
	case "corrupt":
		inj.kind = Corrupt
	default:
		return nil, fmt.Errorf("fault: %q: unknown kind %q", part, kindStr)
	}
	if inj.kind != Latency && hasParam {
		return nil, fmt.Errorf("fault: %q: kind %s takes no parameter", part, inj.kind)
	}
	if !kinds[inj.kind] {
		return nil, fmt.Errorf("fault: kind %s is not valid at site %q", inj.kind, site)
	}
	if hasEvery {
		n, err := strconv.ParseInt(everyStr, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fault: %q: bad every %q", part, everyStr)
		}
		inj.every = n
	}
	return inj, nil
}

// Disarm removes every injection; subsequent Checks are free again.
func Disarm() {
	armed.Store(false)
	mu.Lock()
	plans = nil
	mu.Unlock()
}

// Enabled reports whether any injection is armed.
func Enabled() bool { return armed.Load() }

// Check is the injection point. Sites call it at each sub-task or
// decision; when disarmed it costs one atomic load. When an armed
// injection's every-Nth counter fires, latency sleeps and continues,
// error and corrupt return their sentinel, and panic panics with a
// value naming the site.
func Check(site string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	injs := plans[site]
	mu.Unlock()
	for _, inj := range injs {
		n := inj.checks.Add(1)
		if n%inj.every != 0 {
			continue
		}
		inj.fired.Add(1)
		switch inj.kind {
		case Latency:
			time.Sleep(inj.latency)
		case Error:
			return fmt.Errorf("%w at %s", ErrInjected, site)
		case Panic:
			panic(fmt.Sprintf("fault: injected panic at %s", site))
		case Corrupt:
			return fmt.Errorf("%w at %s", ErrCorrupted, site)
		}
	}
	return nil
}

// InjectionStats is the observability row of one armed injection.
type InjectionStats struct {
	Site   string `json:"site"`
	Kind   string `json:"kind"`
	Every  int64  `json:"every"`
	Checks int64  `json:"checks"`
	Fired  int64  `json:"fired"`
}

// Stats snapshots every armed injection's counters, sorted by
// (site, kind) for stable output.
func Stats() []InjectionStats {
	mu.Lock()
	defer mu.Unlock()
	var out []InjectionStats
	for _, injs := range plans {
		for _, inj := range injs {
			out = append(out, InjectionStats{
				Site:   inj.site,
				Kind:   inj.kind.String(),
				Every:  inj.every,
				Checks: inj.checks.Load(),
				Fired:  inj.fired.Load(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
