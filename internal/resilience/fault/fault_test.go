package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// arm arms a spec that must parse, and disarms at test end.
func arm(t *testing.T, spec string) {
	t.Helper()
	if err := Arm(spec); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedCheckIsNil(t *testing.T) {
	Disarm()
	for _, site := range Sites() {
		if err := Check(site); err != nil {
			t.Fatalf("disarmed Check(%q) = %v, want nil", site, err)
		}
	}
	if Enabled() {
		t.Fatal("Enabled() after Disarm")
	}
}

func TestArmEmptySpecIsNoOp(t *testing.T) {
	Disarm()
	if err := Arm(""); err != nil {
		t.Fatalf("Arm(\"\"): %v", err)
	}
	if Enabled() {
		t.Fatal("empty spec armed the harness")
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	Disarm()
	for _, spec := range []string{
		"nope:error",            // unknown site
		"tile-query:explode",    // unknown kind
		"page-read:panic",       // kind invalid at site
		"exact:error=5",         // parameter on a parameterless kind
		"exact:latency=xyz",     // bad duration
		"exact:latency=-1ms",    // non-positive duration
		"exact:error@0",         // bad every
		"exact:error@-3",        // negative every
		"exact",                 // no kind
		"exact:error,bogus:err", // one bad injection disarms the whole spec
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted, want error", spec)
		}
		if Enabled() {
			t.Errorf("Arm(%q) left the harness armed", spec)
		}
	}
}

func TestErrorInjectionFiresEveryNth(t *testing.T) {
	arm(t, "exact:error@3")
	var fired int
	for i := 1; i <= 9; i++ {
		err := Check("exact")
		if i%3 == 0 {
			if !IsInjected(err) {
				t.Fatalf("check %d: err = %v, want injected", i, err)
			}
			fired++
		} else if err != nil {
			t.Fatalf("check %d: err = %v, want nil", i, err)
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	st := Stats()
	if len(st) != 1 || st[0].Site != "exact" || st[0].Kind != "error" || st[0].Checks != 9 || st[0].Fired != 3 {
		t.Fatalf("Stats() = %+v", st)
	}
}

func TestCorruptWrapsInjected(t *testing.T) {
	arm(t, "page-read:corrupt")
	err := Check("page-read")
	if !errors.Is(err, ErrCorrupted) || !IsInjected(err) {
		t.Fatalf("err = %v, want corrupted and injected", err)
	}
}

func TestPanicInjection(t *testing.T) {
	arm(t, "tile-join:panic")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Check did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "tile-join") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	_ = Check("tile-join")
}

func TestLatencyInjectionSleepsAndContinues(t *testing.T) {
	arm(t, "tile-query:latency=30ms")
	t0 := time.Now()
	if err := Check("tile-query"); err != nil {
		t.Fatalf("latency Check returned %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
}

func TestCheckOtherSiteUnaffected(t *testing.T) {
	arm(t, "exact:error")
	if err := Check("tile-query"); err != nil {
		t.Fatalf("uninjected site returned %v", err)
	}
}
