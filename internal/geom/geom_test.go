package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCrossOrientation(t *testing.T) {
	o := Point{0, 0}
	a := Point{1, 0}
	if got := Orientation(o, a, Point{1, 1}); got != 1 {
		t.Errorf("ccw turn: got %d, want 1", got)
	}
	if got := Orientation(o, a, Point{1, -1}); got != -1 {
		t.Errorf("cw turn: got %d, want -1", got)
	}
	if got := Orientation(o, a, Point{2, 0}); got != 0 {
		t.Errorf("collinear: got %d, want 0", got)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	if p.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", p.Norm())
	}
	if d := p.Dist(Point{0, 0}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	q := p.Rotate(math.Pi / 2)
	if !almostEq(q.X, -4, 1e-12) || !almostEq(q.Y, 3, 1e-12) {
		t.Errorf("Rotate 90° = %v, want (-4,3)", q)
	}
	r := p.RotateAround(math.Pi, Point{3, 4})
	if !almostEq(r.X, 3, 1e-12) || !almostEq(r.Y, 4, 1e-12) {
		t.Errorf("RotateAround pivot = %v, want (3,4)", r)
	}
	if got := (Point{1, 2}).Add(Point{3, 5}); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := (Point{1, 2}).Sub(Point{3, 5}); got != (Point{-2, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := (Point{1, 2}).Dot(Point{3, 5}); got != 13 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Point{1, 0}).CrossVec(Point{0, 1}); got != 1 {
		t.Errorf("CrossVec = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.Area() != 8 {
		t.Errorf("Area = %v, want 8", r.Area())
	}
	if r.Margin() != 6 {
		t.Errorf("Margin = %v, want 6", r.Margin())
	}
	if r.Center() != (Point{2, 1}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.ContainsPoint(Point{0, 0}) || !r.ContainsPoint(Point{4, 2}) {
		t.Error("corners must be contained (closed region)")
	}
	if r.ContainsPoint(Point{4.001, 1}) {
		t.Error("outside point contained")
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 || e.Margin() != 0 {
		t.Error("empty rect measures must be 0")
	}
	r := Rect{1, 1, 2, 2}
	if e.Union(r) != r || r.Union(e) != r {
		t.Error("empty must be the identity of Union")
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty intersects nothing")
	}
	if !r.Contains(e) {
		t.Error("everything contains the empty rect")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	got := a.Intersection(b)
	if got != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersection = %v", got)
	}
	if a.OverlapArea(b) != 1 {
		t.Errorf("OverlapArea = %v, want 1", a.OverlapArea(b))
	}
	c := Rect{5, 5, 6, 6}
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint intersection must be empty")
	}
	// Touching edge: closed semantics.
	d := Rect{2, 0, 3, 2}
	if !a.Intersects(d) {
		t.Error("touching rects must intersect")
	}
	if a.Intersection(d).Area() != 0 {
		t.Error("touching intersection has zero area")
	}
}

func TestRectEnlargementTranslateExpand(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	if e := a.Enlargement(Rect{0, 0, 2, 1}); e != 1 {
		t.Errorf("Enlargement = %v, want 1", e)
	}
	if got := a.Translate(1, 2); got != (Rect{1, 2, 2, 3}) {
		t.Errorf("Translate = %v", got)
	}
	if got := a.Expand(1); got != (Rect{-1, -1, 2, 2}) {
		t.Errorf("Expand = %v", got)
	}
	if got := a.Expand(-1); !got.IsEmpty() {
		t.Errorf("over-shrunk rect must be empty, got %v", got)
	}
}

func TestRectPropertyUnionContains(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{ax, ay, ax + math.Abs(aw), ay + math.Abs(ah)}
		b := Rect{bx, by, bx + math.Abs(bw), by + math.Abs(bh)}
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b) &&
			u.Area()+Eps >= a.Area() && u.Area()+Eps >= b.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyIntersectionSymmetric(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{ax, ay, ax + math.Abs(aw), ay + math.Abs(ah)}
		b := Rect{bx, by, bx + math.Abs(bw), by + math.Abs(bh)}
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		i := a.Intersection(b)
		return a.Intersects(b) == !i.IsEmpty() || (i.IsEmpty() && a.Intersects(b) && i.Area() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		name string
		s, t Segment
		want bool
	}{
		{"proper cross", Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true},
		{"disjoint parallel", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{0, 1}, Point{1, 1}}, false},
		{"shared endpoint", Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, true},
		{"T junction", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{1, 1}}, true},
		{"collinear overlap", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, true},
		{"collinear disjoint", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false},
		{"near miss", Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1.01, 1}, Point{2, 0}}, false},
	}
	for _, c := range cases {
		if got := c.s.Intersects(c.t); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got := c.t.Intersects(c.s); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	u := Segment{Point{0, 2}, Point{2, 0}}
	p, ok := s.IntersectionPoint(u)
	if !ok || !almostEq(p.X, 1, 1e-9) || !almostEq(p.Y, 1, 1e-9) {
		t.Errorf("IntersectionPoint = %v, %v", p, ok)
	}
	if _, ok := s.IntersectionPoint(Segment{Point{5, 5}, Point{6, 6}}); ok {
		t.Error("disjoint segments must not intersect")
	}
	// Collinear overlap returns some shared point.
	p, ok = Segment{Point{0, 0}, Point{2, 0}}.IntersectionPoint(Segment{Point{1, 0}, Point{3, 0}})
	if !ok || !(Segment{Point{0, 0}, Point{2, 0}}).ContainsPoint(p) {
		t.Errorf("collinear overlap: got %v, %v", p, ok)
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	cases := []struct {
		name string
		s    Segment
		want bool
	}{
		{"inside", Segment{Point{0.5, 0.5}, Point{1, 1}}, true},
		{"crossing", Segment{Point{-1, 1}, Point{3, 1}}, true},
		{"outside", Segment{Point{3, 3}, Point{4, 4}}, false},
		{"touching corner", Segment{Point{2, 2}, Point{3, 3}}, true},
		{"diagonal miss", Segment{Point{5, 0}, Point{0, 5}}, false},
		{"diagonal cut", Segment{Point{2.5, 0}, Point{0, 2.5}}, true},
	}
	for _, c := range cases {
		if got := c.s.IntersectsRect(r); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentYAtAndDist(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	if y := s.YAt(1); !almostEq(y, 1, 1e-12) {
		t.Errorf("YAt(1) = %v", y)
	}
	v := Segment{Point{1, 0}, Point{1, 5}}
	if y := v.YAt(1); y != 0 {
		t.Errorf("vertical YAt = %v, want 0 (min endpoint)", y)
	}
	if d := s.DistToPoint(Point{2, 0}); !almostEq(d, math.Sqrt2, 1e-12) {
		t.Errorf("DistToPoint = %v", d)
	}
	if d := s.DistToPoint(Point{3, 3}); !almostEq(d, math.Sqrt2, 1e-12) {
		t.Errorf("DistToPoint beyond end = %v", d)
	}
	deg := Segment{Point{1, 1}, Point{1, 1}}
	if d := deg.DistToPoint(Point{2, 1}); !almostEq(d, 1, 1e-12) {
		t.Errorf("degenerate DistToPoint = %v", d)
	}
}

func square(cx, cy, half float64) []Point {
	return []Point{
		{cx - half, cy - half}, {cx + half, cy - half},
		{cx + half, cy + half}, {cx - half, cy + half},
	}
}

func TestRingAreaOrientation(t *testing.T) {
	r := NewRing(square(0, 0, 1))
	if !r.IsCCW() {
		t.Error("NewRing must normalize to CCW")
	}
	if !almostEq(r.Area(), 4, 1e-12) {
		t.Errorf("Area = %v, want 4", r.Area())
	}
	// Clockwise input is normalized.
	cw := []Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	if !NewRing(cw).IsCCW() {
		t.Error("clockwise input must be reversed")
	}
	rev := r.Reversed()
	if rev.IsCCW() {
		t.Error("Reversed must flip orientation")
	}
	if !almostEq(rev.Area(), r.Area(), 1e-12) {
		t.Error("Reversed must preserve area")
	}
}

func TestRingPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing with 2 points must panic")
		}
	}()
	NewRing([]Point{{0, 0}, {1, 1}})
}

func TestRingContainsPoint(t *testing.T) {
	r := NewRing(square(0, 0, 1))
	if !r.ContainsPoint(Point{0, 0}) {
		t.Error("center must be inside")
	}
	if !r.ContainsPoint(Point{1, 0}) {
		t.Error("boundary must be inside (closed region)")
	}
	if !r.ContainsPoint(Point{1, 1}) {
		t.Error("corner must be inside")
	}
	if r.ContainsPoint(Point{1.001, 0}) {
		t.Error("outside point reported inside")
	}
	// Concave ring: an L shape.
	l := NewRing([]Point{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}})
	if !l.ContainsPoint(Point{0.5, 1.5}) {
		t.Error("L-shape upper arm must contain point")
	}
	if l.ContainsPoint(Point{1.5, 1.5}) {
		t.Error("L-shape notch must not contain point")
	}
}

func TestRingCentroid(t *testing.T) {
	r := NewRing(square(3, -2, 1))
	c := r.Centroid()
	if !almostEq(c.X, 3, 1e-9) || !almostEq(c.Y, -2, 1e-9) {
		t.Errorf("Centroid = %v, want (3,-2)", c)
	}
}

func TestRingConvexAndSelfIntersect(t *testing.T) {
	if !NewRing(square(0, 0, 1)).IsConvex() {
		t.Error("square must be convex")
	}
	l := NewRing([]Point{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}})
	if l.IsConvex() {
		t.Error("L-shape must not be convex")
	}
	if l.SelfIntersects() {
		t.Error("simple ring reported self-intersecting")
	}
	bow := Ring{{0, 0}, {1, 1}, {1, 0}, {0, 1}}
	if !bow.SelfIntersects() {
		t.Error("bowtie must self-intersect")
	}
}

func TestPolygonWithHoles(t *testing.T) {
	p := NewPolygon(square(0, 0, 2), square(0, 0, 1))
	if err := p.ValidateSimple(); err != nil {
		t.Fatalf("ValidateSimple: %v", err)
	}
	if !almostEq(p.Area(), 16-4, 1e-12) {
		t.Errorf("Area = %v, want 12", p.Area())
	}
	if p.NumVertices() != 8 {
		t.Errorf("NumVertices = %d, want 8", p.NumVertices())
	}
	if p.ContainsPoint(Point{0, 0}) {
		t.Error("hole interior must not be contained")
	}
	if !p.ContainsPoint(Point{0, 1}) {
		t.Error("hole rim must be contained (closed region)")
	}
	if !p.ContainsPoint(Point{0, 1.5}) {
		t.Error("annulus interior must be contained")
	}
	if p.ContainsPoint(Point{0, 3}) {
		t.Error("outside point contained")
	}
}

func TestPolygonIntersects(t *testing.T) {
	a := NewPolygon(square(0, 0, 1))
	cases := []struct {
		name string
		b    *Polygon
		want bool
	}{
		{"overlapping", NewPolygon(square(1, 1, 1)), true},
		{"disjoint", NewPolygon(square(5, 5, 1)), false},
		{"contained", NewPolygon(square(0, 0, 0.25)), true},
		{"containing", NewPolygon(square(0, 0, 4)), true},
		{"touching edge", NewPolygon(square(2, 0, 1)), true},
		{"MBRs overlap, objects do not", NewPolygon([]Point{{1.05, 1.05}, {3, 1.2}, {3, 3}, {1.2, 3}}), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPolygonInHoleNotIntersecting(t *testing.T) {
	annulus := NewPolygon(square(0, 0, 3), square(0, 0, 2))
	island := NewPolygon(square(0, 0, 1))
	if annulus.Intersects(island) {
		t.Error("island inside hole must not intersect the annulus")
	}
	if island.Intersects(annulus) {
		t.Error("island inside hole must not intersect the annulus (swapped)")
	}
	bridge := NewPolygon(square(2, 0, 0.5)) // straddles the hole rim
	if !annulus.Intersects(bridge) {
		t.Error("polygon straddling the hole rim must intersect")
	}
}

func TestPolygonTransformTranslate(t *testing.T) {
	p := NewPolygon(square(0, 0, 1), square(0, 0, 0.5))
	q := p.Translate(10, -5)
	if !almostEq(q.Area(), p.Area(), 1e-12) {
		t.Error("Translate must preserve area")
	}
	if q.Bounds() != p.Bounds().Translate(10, -5) {
		t.Error("Translate bounds mismatch")
	}
	r := p.Transform(func(pt Point) Point { return pt.Rotate(math.Pi / 4) })
	if !almostEq(r.Area(), p.Area(), 1e-9) {
		t.Error("rotation must preserve area")
	}
	if err := r.ValidateSimple(); err != nil {
		t.Errorf("rotated polygon invalid: %v", err)
	}
}

func TestValidateSimpleFailures(t *testing.T) {
	bad := &Polygon{Outer: Ring{{0, 0}, {1, 1}, {1, 0}, {0, 1}}}
	if bad.Outer.IsCCW() {
		// ensure orientation is fine so we reach the self-intersection check
		if err := bad.ValidateSimple(); err == nil {
			t.Error("self-intersecting outer ring must fail validation")
		}
	}
	holeOutside := NewPolygon(square(0, 0, 1))
	holeOutside.Holes = append(holeOutside.Holes, NewRing(square(5, 5, 0.5)).Reversed())
	if err := holeOutside.ValidateSimple(); err == nil {
		t.Error("hole outside outer ring must fail validation")
	}
}

// randomStar returns a random star-shaped simple ring around (cx, cy).
func randomStar(rng *rand.Rand, cx, cy, radius float64, n int) Ring {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.4 + 0.6*rng.Float64())
		pts[i] = Point{cx + r*math.Cos(ang), cy + r*math.Sin(ang)}
	}
	return NewRing(pts)
}

func TestPropertyStarRingSimpleAndContainsCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		r := randomStar(rng, 0, 0, 1, 5+rng.Intn(30))
		if r.SelfIntersects() {
			t.Fatalf("star ring %d self-intersects", i)
		}
		if !r.ContainsPoint(Point{0, 0}) {
			t.Fatalf("star ring %d does not contain its center", i)
		}
		if r.Area() <= 0 {
			t.Fatalf("star ring %d has non-positive area", i)
		}
		b := r.Bounds()
		for _, p := range r {
			if !b.ContainsPoint(p) {
				t.Fatalf("bounds must contain every vertex")
			}
		}
	}
}

func TestPropertySegmentIntersectionConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		s := Segment{Point{rng.Float64(), rng.Float64()}, Point{rng.Float64(), rng.Float64()}}
		u := Segment{Point{rng.Float64(), rng.Float64()}, Point{rng.Float64(), rng.Float64()}}
		got := s.Intersects(u)
		p, ok := s.IntersectionPoint(u)
		if got != ok {
			t.Fatalf("Intersects=%v but IntersectionPoint ok=%v for %v %v", got, ok, s, u)
		}
		if ok {
			if s.DistToPoint(p) > 1e-6 || u.DistToPoint(p) > 1e-6 {
				t.Fatalf("intersection point %v not on both segments", p)
			}
		}
	}
}

func TestPropertyPolygonIntersectsCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	polys := make([]*Polygon, 30)
	for i := range polys {
		polys[i] = &Polygon{Outer: randomStar(rng, rng.Float64()*4, rng.Float64()*4, 0.8, 6+rng.Intn(12))}
	}
	for i := range polys {
		for j := range polys {
			if polys[i].Intersects(polys[j]) != polys[j].Intersects(polys[i]) {
				t.Fatalf("Intersects not symmetric for %d,%d", i, j)
			}
		}
		if !polys[i].Intersects(polys[i]) {
			t.Fatalf("polygon must intersect itself")
		}
	}
}
