package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boundedPoint generates well-conditioned coordinates for quick checks.
func boundedPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10}
}

func TestQuickRotatePreservesDistance(t *testing.T) {
	f := func(x1, y1, x2, y2, angScale float64) bool {
		p := Point{X: math.Mod(x1, 100), Y: math.Mod(y1, 100)}
		q := Point{X: math.Mod(x2, 100), Y: math.Mod(y2, 100)}
		ang := math.Mod(angScale, 2*math.Pi)
		d0 := p.Dist(q)
		d1 := p.Rotate(ang).Dist(q.Rotate(ang))
		return math.Abs(d0-d1) < 1e-6*(1+d0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossAntisymmetric(t *testing.T) {
	f := func(ox, oy, ax, ay, bx, by float64) bool {
		o := Point{X: math.Mod(ox, 50), Y: math.Mod(oy, 50)}
		a := Point{X: math.Mod(ax, 50), Y: math.Mod(ay, 50)}
		b := Point{X: math.Mod(bx, 50), Y: math.Mod(by, 50)}
		return Cross(o, a, b) == -Cross(o, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSegmentIntersectsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for i := 0; i < 2000; i++ {
		s := Segment{A: boundedPoint(rng), B: boundedPoint(rng)}
		u := Segment{A: boundedPoint(rng), B: boundedPoint(rng)}
		if s.Intersects(u) != u.Intersects(s) {
			t.Fatalf("Intersects not symmetric: %v %v", s, u)
		}
		// A segment always intersects itself and its reverse.
		if !s.Intersects(s) || !s.Intersects(Segment{A: s.B, B: s.A}) {
			t.Fatalf("self-intersection violated: %v", s)
		}
		// Translation invariance.
		dx, dy := rng.Float64()*5, rng.Float64()*5
		st := Segment{A: s.A.Add(Point{X: dx, Y: dy}), B: s.B.Add(Point{X: dx, Y: dy})}
		ut := Segment{A: u.A.Add(Point{X: dx, Y: dy}), B: u.B.Add(Point{X: dx, Y: dy})}
		if s.Intersects(u) != st.Intersects(ut) {
			t.Fatalf("translation changed intersection: %v %v", s, u)
		}
	}
}

func TestQuickRectUnionMonotone(t *testing.T) {
	f := func(ax, ay, aw, ah, px, py float64) bool {
		a := Rect{MinX: ax, MinY: ay, MaxX: ax + math.Abs(aw), MaxY: ay + math.Abs(ah)}
		p := Point{X: px, Y: py}
		e := a.ExtendPoint(p)
		return e.Contains(a) && e.ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickRingAreaInvariantUnderRotationAndTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	for i := 0; i < 200; i++ {
		r := randomStar(rng, 0, 0, 1+rng.Float64()*3, 4+rng.Intn(40))
		area := r.Area()
		ang := rng.Float64() * 2 * math.Pi
		dx, dy := rng.Float64()*10-5, rng.Float64()*10-5
		tr := r.Transform(func(p Point) Point { return p.Rotate(ang).Add(Point{X: dx, Y: dy}) })
		if math.Abs(tr.Area()-area) > 1e-6*(1+area) {
			t.Fatalf("area changed under rigid motion: %v vs %v", tr.Area(), area)
		}
		if tr.IsCCW() != r.IsCCW() {
			t.Fatal("orientation changed under rigid motion")
		}
	}
}

func TestQuickPolygonAreaDecomposesOverHoles(t *testing.T) {
	rng := rand.New(rand.NewSource(719))
	for i := 0; i < 100; i++ {
		outer := randomStar(rng, 0, 0, 4, 8+rng.Intn(20))
		hole := randomStar(rng, 0, 0, 0.8, 5+rng.Intn(10))
		inside := true
		for _, v := range hole {
			if !outer.ContainsPoint(v) {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		p := &Polygon{Outer: outer, Holes: []Ring{hole.Reversed()}}
		want := outer.Area() - hole.Area()
		if math.Abs(p.Area()-want) > 1e-9 {
			t.Fatalf("polygon area %v != outer − hole %v", p.Area(), want)
		}
	}
}

func TestQuickContainsPolygonTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(727))
	for i := 0; i < 150; i++ {
		big := &Polygon{Outer: randomStar(rng, 0, 0, 3, 10)}
		mid := &Polygon{Outer: randomStar(rng, 0, 0, 1.1, 8)}
		small := &Polygon{Outer: randomStar(rng, 0, 0, 0.35, 6)}
		if big.ContainsPolygon(mid) && mid.ContainsPolygon(small) {
			if !big.ContainsPolygon(small) {
				t.Fatal("containment must be transitive")
			}
		}
		// Containment implies intersection.
		if big.ContainsPolygon(mid) && !big.Intersects(mid) {
			t.Fatal("containment must imply intersection")
		}
		// Mutual containment only for equal regions; distinct stars can't.
		if big.ContainsPolygon(mid) && mid.ContainsPolygon(big) {
			if math.Abs(big.Area()-mid.Area()) > 1e-9 {
				t.Fatal("mutual containment of different-area regions")
			}
		}
	}
}
