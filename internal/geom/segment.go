package geom

import "math"

// Segment is a closed line segment between two endpoints. Segments are the
// unit of work of the exact geometry processor: both the quadratic edge
// test and the plane-sweep algorithm of section 4 reduce polygon
// intersection to segment intersection tests.
type Segment struct {
	A, B Point
}

// Bounds returns the minimum bounding rectangle of s.
func (s Segment) Bounds() Rect {
	return Rect{
		MinX: math.Min(s.A.X, s.B.X),
		MinY: math.Min(s.A.Y, s.B.Y),
		MaxX: math.Max(s.A.X, s.B.X),
		MaxY: math.Max(s.A.Y, s.B.Y),
	}
}

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// onSegment reports whether p, already known to be collinear with s, lies
// within the bounding box of s.
func (s Segment) onSegment(p Point) bool {
	return p.X >= math.Min(s.A.X, s.B.X)-Eps && p.X <= math.Max(s.A.X, s.B.X)+Eps &&
		p.Y >= math.Min(s.A.Y, s.B.Y)-Eps && p.Y <= math.Max(s.A.Y, s.B.Y)+Eps
}

// ContainsPoint reports whether p lies on the closed segment s.
func (s Segment) ContainsPoint(p Point) bool {
	if Orientation(s.A, s.B, p) != 0 {
		return false
	}
	return s.onSegment(p)
}

// Intersects reports whether the closed segments s and t share at least one
// point. It is the classic four-orientation test extended with collinear
// overlap handling, so touching endpoints and collinear overlaps count as
// intersections (closed-set semantics).
func (s Segment) Intersects(t Segment) bool {
	o1 := Orientation(s.A, s.B, t.A)
	o2 := Orientation(s.A, s.B, t.B)
	o3 := Orientation(t.A, t.B, s.A)
	o4 := Orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear configurations: check whether an endpoint of one segment
	// lies on the other.
	if o1 == 0 && s.onSegment(t.A) {
		return true
	}
	if o2 == 0 && s.onSegment(t.B) {
		return true
	}
	if o3 == 0 && t.onSegment(s.A) {
		return true
	}
	if o4 == 0 && t.onSegment(s.B) {
		return true
	}
	return false
}

// IntersectsRect reports whether the closed segment s shares at least one
// point with the closed rectangle r. This is the "edge-rectangle
// intersection test" of Table 6, used by the plane-sweep algorithm to
// restrict the search space to the intersection rectangle of the two MBRs.
func (s Segment) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if !s.Bounds().Intersects(r) {
		return false
	}
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	c := r.Corners()
	for i := 0; i < 4; i++ {
		if s.Intersects(Segment{c[i], c[(i+1)%4]}) {
			return true
		}
	}
	return false
}

// YAt returns the y coordinate of the (extended) line through s at the
// given x. For vertical segments it returns the smaller endpoint y; the
// plane-sweep status uses YAt only for segments that span the sweep line,
// which excludes truly vertical edges at their own x except at events.
func (s Segment) YAt(x float64) float64 {
	dx := s.B.X - s.A.X
	if math.Abs(dx) < Eps {
		return math.Min(s.A.Y, s.B.Y)
	}
	t := (x - s.A.X) / dx
	return s.A.Y + t*(s.B.Y-s.A.Y)
}

// IntersectionPoint returns a common point of two intersecting segments.
// The second result is false when the segments do not intersect. For
// collinear overlaps an arbitrary shared endpoint is returned.
func (s Segment) IntersectionPoint(t Segment) (Point, bool) {
	d1 := s.B.Sub(s.A)
	d2 := t.B.Sub(t.A)
	den := d1.CrossVec(d2)
	if math.Abs(den) > Eps {
		u := t.A.Sub(s.A).CrossVec(d2) / den
		v := t.A.Sub(s.A).CrossVec(d1) / den
		if u >= -Eps && u <= 1+Eps && v >= -Eps && v <= 1+Eps {
			return s.A.Add(d1.Scale(u)), true
		}
		return Point{}, false
	}
	// Parallel: only collinear overlap can intersect.
	for _, p := range []Point{t.A, t.B} {
		if s.ContainsPoint(p) {
			return p, true
		}
	}
	for _, p := range []Point{s.A, s.B} {
		if t.ContainsPoint(p) {
			return p, true
		}
	}
	return Point{}, false
}

// DistToSegment returns the Euclidean distance between the closed
// segments s and t: 0 when they intersect, otherwise the smallest
// endpoint-to-segment distance (the minimum over two disjoint segments is
// always realized at an endpoint of one of them).
func (s Segment) DistToSegment(t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	d := s.DistToPoint(t.A)
	if dd := s.DistToPoint(t.B); dd < d {
		d = dd
	}
	if dd := t.DistToPoint(s.A); dd < d {
		d = dd
	}
	if dd := t.DistToPoint(s.B); dd < d {
		d = dd
	}
	return d
}

// DistToPoint returns the Euclidean distance from p to the closed segment s.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 < Eps {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	proj := s.A.Add(d.Scale(t))
	return p.Dist(proj)
}
