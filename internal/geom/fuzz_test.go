package geom

import (
	"math"
	"testing"
)

func ok(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return false
		}
	}
	return true
}

func FuzzSegmentIntersects(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0)
	f.Add(0.0, 0.0, 2.0, 0.0, 1.0, 0.0, 1.0, 1.0)
	f.Add(0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		if !ok(ax, ay, bx, by, cx, cy, dx, dy) {
			t.Skip()
		}
		s := Segment{A: Point{X: ax, Y: ay}, B: Point{X: bx, Y: by}}
		u := Segment{A: Point{X: cx, Y: cy}, B: Point{X: dx, Y: dy}}
		if s.Intersects(u) != u.Intersects(s) {
			t.Fatalf("Intersects not symmetric: %v %v", s, u)
		}
		got := s.Intersects(u)
		p, found := s.IntersectionPoint(u)
		if got != found {
			t.Fatalf("Intersects=%v, IntersectionPoint found=%v", got, found)
		}
		if found {
			scale := 1 + s.Length() + u.Length()
			if s.DistToPoint(p) > 1e-6*scale || u.DistToPoint(p) > 1e-6*scale {
				t.Fatalf("intersection point %v off the segments", p)
			}
		}
		// The segments' bounding boxes must overlap whenever they intersect.
		if got && !s.Bounds().Intersects(u.Bounds()) {
			t.Fatal("intersecting segments with disjoint bounds")
		}
	})
}

func FuzzOrientationAdaptive(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 1.0)
	f.Add(1e-30, 0.0, 1.0, 1e30, -1.0, 2.0)
	f.Fuzz(func(t *testing.T, ox, oy, axx, ayy, bxx, byy float64) {
		if !ok(ox, oy, axx, ayy, bxx, byy) {
			t.Skip()
		}
		o := Point{X: ox, Y: oy}
		a := Point{X: axx, Y: ayy}
		b := Point{X: bxx, Y: byy}
		got := OrientationAdaptive(o, a, b)
		want := orientationRatReference(o, a, b)
		if got != want {
			t.Fatalf("adaptive %d, exact %d for %v %v %v", got, want, o, a, b)
		}
		if got != -OrientationAdaptive(o, b, a) {
			t.Fatal("adaptive orientation not antisymmetric")
		}
	})
}

func FuzzRectOps(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5, 2.0, 2.0)
	f.Fuzz(func(t *testing.T, ax, ay, aw, ah, bx, by, bw, bh float64) {
		if !ok(ax, ay, aw, ah, bx, by, bw, bh) {
			t.Skip()
		}
		a := Rect{MinX: ax, MinY: ay, MaxX: ax + math.Abs(aw), MaxY: ay + math.Abs(ah)}
		b := Rect{MinX: bx, MinY: by, MaxX: bx + math.Abs(bw), MaxY: by + math.Abs(bh)}
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatal("union must contain both operands")
		}
		i := a.Intersection(b)
		if !i.IsEmpty() {
			if !a.Contains(i) || !b.Contains(i) {
				t.Fatal("intersection must be contained in both operands")
			}
		}
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatal("Intersects not symmetric")
		}
		if a.Intersects(b) != !a.Intersection(b).IsEmpty() {
			t.Fatal("Intersects inconsistent with Intersection")
		}
	})
}
