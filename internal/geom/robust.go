package geom

import "math/big"

// orientationErrBound is a conservative forward-error bound factor for the
// floating-point orientation determinant: if |det| exceeds
// orientationErrBound · (|t1| + |t2|), the sign of the float result is the
// exact sign (t1, t2 are the two products of the 2×2 determinant). The
// factor is a few ulps above the textbook 3u bound to stay safely
// conservative.
const orientationErrBound = 1.0e-15

// OrientationAdaptive classifies the turn o→a→b exactly: it first computes
// the orientation determinant in float64 and accepts the sign when the
// result provably dominates its rounding error; otherwise it recomputes
// the determinant in arbitrary-precision arithmetic. The result is the
// exact sign of the underlying real determinant of the given float64
// coordinates (+1 counterclockwise, −1 clockwise, 0 exactly collinear).
//
// The fast-path kernel (Orientation) with its epsilon tolerance is what
// the join processor uses — the paper's cartographic regime keeps
// coordinates well conditioned. OrientationAdaptive hardens the kernel for
// adversarial inputs (collinear grids, near-degenerate slivers) at ≈ 2×
// the cost in the common case.
func OrientationAdaptive(o, a, b Point) int {
	ax := a.X - o.X
	ay := a.Y - o.Y
	bx := b.X - o.X
	by := b.Y - o.Y
	t1 := ax * by
	t2 := ay * bx
	det := t1 - t2
	absSum := abs(t1) + abs(t2)
	if det > orientationErrBound*absSum {
		return 1
	}
	if det < -orientationErrBound*absSum {
		return -1
	}
	if absSum == 0 {
		return 0 // all terms exactly zero
	}
	return orientationBig(o, a, b)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// orientationBig evaluates the determinant exactly with big.Rat: float64
// inputs are binary rationals, so every operation below is exact
// (including the coordinate differences, which would round in float64).
func orientationBig(o, a, b Point) int {
	ox := new(big.Rat).SetFloat64(o.X)
	oy := new(big.Rat).SetFloat64(o.Y)
	axr := new(big.Rat).Sub(new(big.Rat).SetFloat64(a.X), ox)
	ayr := new(big.Rat).Sub(new(big.Rat).SetFloat64(a.Y), oy)
	bxr := new(big.Rat).Sub(new(big.Rat).SetFloat64(b.X), ox)
	byr := new(big.Rat).Sub(new(big.Rat).SetFloat64(b.Y), oy)
	t1 := new(big.Rat).Mul(axr, byr)
	t2 := new(big.Rat).Mul(ayr, bxr)
	return t1.Cmp(t2)
}

// SegmentsCrossAdaptive reports whether two closed segments share a point,
// decided with exact arithmetic in the borderline cases — the robust
// counterpart of Segment.Intersects.
func SegmentsCrossAdaptive(s, t Segment) bool {
	o1 := OrientationAdaptive(s.A, s.B, t.A)
	o2 := OrientationAdaptive(s.A, s.B, t.B)
	o3 := OrientationAdaptive(t.A, t.B, s.A)
	o4 := OrientationAdaptive(t.A, t.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	if o1 == 0 && s.onSegment(t.A) {
		return true
	}
	if o2 == 0 && s.onSegment(t.B) {
		return true
	}
	if o3 == 0 && t.onSegment(s.A) {
		return true
	}
	if o4 == 0 && t.onSegment(s.B) {
		return true
	}
	return false
}
