package geom

import "math"

// Polygon is a polygonal area in vector representation: one outer ring and
// zero or more hole rings cut out of it (section 2.1 of the paper — e.g. a
// forest with lakes). The outer ring is counterclockwise and holes are
// clockwise; NewPolygon normalizes orientations.
type Polygon struct {
	Outer Ring
	Holes []Ring
}

// NewPolygon builds a polygon from an outer boundary and optional holes,
// normalizing ring orientations. The caller is responsible for supplying
// simple, properly nested rings; ValidateSimple can check that for test
// and generator data.
func NewPolygon(outer []Point, holes ...[]Point) *Polygon {
	p := &Polygon{Outer: NewRing(outer)}
	for _, h := range holes {
		p.Holes = append(p.Holes, NewRing(h).Reversed())
	}
	return p
}

// Clone returns a deep copy of p.
func (p *Polygon) Clone() *Polygon {
	out := &Polygon{Outer: p.Outer.Clone()}
	for _, h := range p.Holes {
		out.Holes = append(out.Holes, h.Clone())
	}
	return out
}

// NumVertices returns the total number of vertices over all rings — the
// object complexity measure m used throughout the paper.
func (p *Polygon) NumVertices() int {
	n := len(p.Outer)
	for _, h := range p.Holes {
		n += len(h)
	}
	return n
}

// NumEdges returns the total number of edges over all rings, which equals
// NumVertices for closed rings.
func (p *Polygon) NumEdges() int { return p.NumVertices() }

// Bounds returns the minimum bounding rectangle (MBR) of p, the geometric
// key of step 1.
func (p *Polygon) Bounds() Rect { return p.Outer.Bounds() }

// Area returns the area of the polygonal region: outer area minus hole
// areas.
func (p *Polygon) Area() float64 {
	a := p.Outer.Area()
	for _, h := range p.Holes {
		a -= h.Area()
	}
	return a
}

// Edges appends all edges of p (outer ring and holes) to dst and returns
// the extended slice. Passing a reused buffer avoids per-pair allocations
// in the exact geometry processor.
func (p *Polygon) Edges(dst []Segment) []Segment {
	for i := range p.Outer {
		dst = append(dst, p.Outer.Edge(i))
	}
	for _, h := range p.Holes {
		for i := range h {
			dst = append(dst, h.Edge(i))
		}
	}
	return dst
}

// Vertices appends all vertices of p to dst and returns the extended slice.
func (p *Polygon) Vertices(dst []Point) []Point {
	dst = append(dst, p.Outer...)
	for _, h := range p.Holes {
		dst = append(dst, h...)
	}
	return dst
}

// ContainsPoint reports whether q lies in the closed polygonal region:
// inside (or on) the outer ring and not strictly inside any hole.
func (p *Polygon) ContainsPoint(q Point) bool {
	if !p.Outer.ContainsPoint(q) {
		return false
	}
	for _, h := range p.Holes {
		if h.OnBoundary(q) {
			return true // on a hole rim is still in the closed region
		}
		if h.containsInterior(q) {
			return false
		}
	}
	return true
}

// OnBoundary reports whether q lies on any ring of p.
func (p *Polygon) OnBoundary(q Point) bool {
	if p.Outer.OnBoundary(q) {
		return true
	}
	for _, h := range p.Holes {
		if h.OnBoundary(q) {
			return true
		}
	}
	return false
}

// anyVertex returns a vertex of p; every polygon has at least three.
func (p *Polygon) anyVertex() Point { return p.Outer[0] }

// Intersects reports whether the closed regions of p and q share at least
// one point. It is the brute-force ground truth of the repository
// (quadratic edge test plus the containment fallback of section 4) against
// which the plane-sweep and TR*-tree engines, all approximation filters
// and the complete pipeline are validated.
func (p *Polygon) Intersects(q *Polygon) bool {
	if !p.Bounds().Intersects(q.Bounds()) {
		return false
	}
	var pe, qe []Segment
	pe = p.Edges(pe)
	qe = q.Edges(qe)
	for _, a := range pe {
		ab := a.Bounds()
		for _, b := range qe {
			if ab.Intersects(b.Bounds()) && a.Intersects(b) {
				return true
			}
		}
	}
	// No boundary crossing: the regions intersect only via containment.
	// MBR pretest as in section 4: containment of the region implies
	// containment of the MBR.
	if p.Bounds().Contains(q.Bounds()) && p.ContainsPoint(q.anyVertex()) {
		return true
	}
	if q.Bounds().Contains(p.Bounds()) && q.ContainsPoint(p.anyVertex()) {
		return true
	}
	return false
}

// Translate returns a copy of p shifted by (dx, dy).
func (p *Polygon) Translate(dx, dy float64) *Polygon {
	out := &Polygon{Outer: p.Outer.Translate(dx, dy)}
	for _, h := range p.Holes {
		out.Holes = append(out.Holes, h.Translate(dx, dy))
	}
	return out
}

// Transform returns a copy of p with f applied to every vertex. The caller
// must supply an orientation-preserving map (rotation, translation,
// positive scaling) so ring orientations stay valid.
func (p *Polygon) Transform(f func(Point) Point) *Polygon {
	out := &Polygon{Outer: p.Outer.Transform(f)}
	for _, h := range p.Holes {
		out.Holes = append(out.Holes, h.Transform(f))
	}
	return out
}

// DistToPoint returns the Euclidean distance from q to the closed
// polygonal region: 0 when q lies in the region, otherwise the distance to
// the nearest boundary point.
func (p *Polygon) DistToPoint(q Point) float64 {
	if p.Bounds().ContainsPoint(q) && p.ContainsPoint(q) {
		return 0
	}
	var edges []Segment
	edges = p.Edges(edges)
	d := math.Inf(1)
	for _, e := range edges {
		if dd := e.DistToPoint(q); dd < d {
			d = dd
		}
	}
	return d
}

// DistToPolygon returns the Euclidean distance between the closed
// polygonal regions of p and q: 0 when they intersect, otherwise the
// smallest distance between their boundaries. Like Intersects it is the
// brute-force ground truth — the oracle of the within-distance join —
// against which the engine-specific distance tests are validated.
func (p *Polygon) DistToPolygon(q *Polygon) float64 {
	if p.Intersects(q) {
		return 0
	}
	// Disjoint closed regions: the infimum distance is attained between
	// boundary points (hole rings included — one region may lie inside a
	// hole of the other).
	var pe, qe []Segment
	pe = p.Edges(pe)
	qe = q.Edges(qe)
	d := math.Inf(1)
	for _, a := range pe {
		for _, b := range qe {
			if dd := a.DistToSegment(b); dd < d {
				d = dd
			}
		}
	}
	return d
}

// DistToRect returns the Euclidean distance between the closed polygonal
// region and the closed rectangle (degenerate rectangles — segments and
// points — included): 0 when they share a point, otherwise the smallest
// boundary distance. It is the exact kernel of the ε-range query.
func (p *Polygon) DistToRect(r Rect) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	// Containment either way means intersection (holes cannot separate a
	// rectangle that contains the full outer ring, and a rectangle corner
	// inside the region is decided by ContainsPoint).
	if r.Contains(p.Bounds()) {
		return 0
	}
	c := r.Corners()
	if p.Bounds().ContainsPoint(c[0]) && p.ContainsPoint(c[0]) {
		return 0
	}
	var edges []Segment
	edges = p.Edges(edges)
	d := math.Inf(1)
	for _, e := range edges {
		for i := 0; i < 4; i++ {
			if dd := e.DistToSegment(Segment{A: c[i], B: c[(i+1)%4]}); dd < d {
				d = dd
			}
		}
	}
	return d
}

// ValidateSimple checks structural invariants: every ring is simple
// (non-self-intersecting), the outer ring is counterclockwise, holes are
// clockwise and lie inside the outer ring. It is quadratic and meant for
// tests and the data generator.
func (p *Polygon) ValidateSimple() error {
	if len(p.Outer) < 3 {
		return errValidation("outer ring has fewer than 3 vertices")
	}
	if !p.Outer.IsCCW() {
		return errValidation("outer ring is not counterclockwise")
	}
	if p.Outer.SelfIntersects() {
		return errValidation("outer ring self-intersects")
	}
	for _, h := range p.Holes {
		if len(h) < 3 {
			return errValidation("hole has fewer than 3 vertices")
		}
		if h.IsCCW() {
			return errValidation("hole ring is not clockwise")
		}
		if h.SelfIntersects() {
			return errValidation("hole ring self-intersects")
		}
		for _, v := range h {
			if !p.Outer.ContainsPoint(v) {
				return errValidation("hole vertex outside outer ring")
			}
		}
	}
	return nil
}

type errValidation string

func (e errValidation) Error() string { return "geom: invalid polygon: " + string(e) }
