package geom

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// orientationRatReference is the test-only exact ground truth.
func orientationRatReference(o, a, b Point) int {
	ox := new(big.Rat).SetFloat64(o.X)
	oy := new(big.Rat).SetFloat64(o.Y)
	ax := new(big.Rat).Sub(new(big.Rat).SetFloat64(a.X), ox)
	ay := new(big.Rat).Sub(new(big.Rat).SetFloat64(a.Y), oy)
	bx := new(big.Rat).Sub(new(big.Rat).SetFloat64(b.X), ox)
	by := new(big.Rat).Sub(new(big.Rat).SetFloat64(b.Y), oy)
	t1 := new(big.Rat).Mul(ax, by)
	t2 := new(big.Rat).Mul(ay, bx)
	return t1.Cmp(t2)
}

func TestOrientationAdaptiveMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < 5000; trial++ {
		o := Point{X: rng.Float64(), Y: rng.Float64()}
		a := Point{X: rng.Float64(), Y: rng.Float64()}
		b := Point{X: rng.Float64(), Y: rng.Float64()}
		if got, want := OrientationAdaptive(o, a, b), orientationRatReference(o, a, b); got != want {
			t.Fatalf("trial %d: adaptive %d, exact %d", trial, got, want)
		}
	}
}

func TestOrientationAdaptiveNearCollinear(t *testing.T) {
	// Points on a line, then perturbed by single ulps — the adversarial
	// regime where the float kernel's epsilon answer is unreliable.
	rng := rand.New(rand.NewSource(821))
	for trial := 0; trial < 3000; trial++ {
		o := Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		d := Point{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
		t1 := rng.Float64() * 10
		t2 := t1 + rng.Float64()*10
		a := o.Add(d.Scale(t1))
		b := o.Add(d.Scale(t2))
		// Perturb b by 0..2 ulps in y.
		for k := 0; k < 3; k++ {
			bb := b
			for u := 0; u < k; u++ {
				bb.Y = math.Nextafter(bb.Y, math.Inf(1))
			}
			if got, want := OrientationAdaptive(o, a, bb), orientationRatReference(o, a, bb); got != want {
				t.Fatalf("trial %d ulp %d: adaptive %d, exact %d", trial, k, got, want)
			}
		}
	}
}

func TestOrientationAdaptiveExactCases(t *testing.T) {
	o := Point{X: 0, Y: 0}
	a := Point{X: 1, Y: 1}
	if OrientationAdaptive(o, a, Point{X: 2, Y: 2}) != 0 {
		t.Error("exactly collinear must be 0")
	}
	if OrientationAdaptive(o, a, Point{X: 1, Y: 1.0000000000000002}) != 1 {
		t.Error("one ulp above the diagonal must be CCW")
	}
	if OrientationAdaptive(o, a, Point{X: 1, Y: 0.9999999999999999}) != -1 {
		t.Error("one ulp below the diagonal must be CW")
	}
	if OrientationAdaptive(o, o, o) != 0 {
		t.Error("degenerate identical points must be 0")
	}
}

func TestSegmentsCrossAdaptiveAgreesOnGenericInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(823))
	for trial := 0; trial < 3000; trial++ {
		s := Segment{A: Point{X: rng.Float64(), Y: rng.Float64()}, B: Point{X: rng.Float64(), Y: rng.Float64()}}
		u := Segment{A: Point{X: rng.Float64(), Y: rng.Float64()}, B: Point{X: rng.Float64(), Y: rng.Float64()}}
		if SegmentsCrossAdaptive(s, u) != s.Intersects(u) {
			// Disagreement is only acceptable within epsilon of touching.
			p, ok := s.IntersectionPoint(u)
			if !ok || s.DistToPoint(p) > 1e-9 || u.DistToPoint(p) > 1e-9 {
				t.Fatalf("trial %d: adaptive and float kernels disagree on generic input", trial)
			}
		}
	}
}

func BenchmarkOrientationFloat(b *testing.B) {
	o := Point{X: 0.1, Y: 0.2}
	p := Point{X: 0.7, Y: 0.9}
	q := Point{X: 0.4, Y: 0.3}
	for i := 0; i < b.N; i++ {
		_ = Orientation(o, p, q)
	}
}

func BenchmarkOrientationAdaptive(b *testing.B) {
	o := Point{X: 0.1, Y: 0.2}
	p := Point{X: 0.7, Y: 0.9}
	q := Point{X: 0.4, Y: 0.3}
	for i := 0; i < b.N; i++ {
		_ = OrientationAdaptive(o, p, q)
	}
}
