package geom

import "math"

// Rect is an axis-parallel rectangle, the minimum bounding rectangle (MBR)
// used as the geometric key of the R*-tree and as the cheapest conservative
// approximation of a spatial object. A Rect is a closed region; a rectangle
// with MinX == MaxX or MinY == MaxY is a degenerate (line or point) but
// still valid rectangle, which occurs for horizontal or vertical segments.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element of Union: a rectangle that
// contains nothing and unions to its argument.
func EmptyRect() Rect {
	return Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// RectFromPoints returns the minimum bounding rectangle of pts.
// It returns EmptyRect() when pts is empty.
func RectFromPoints(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the x extension of r, or 0 for an empty rectangle.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the y extension of r, or 0 for an empty rectangle.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r (0 for degenerate and empty rectangles).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r, the R*-tree split goodness
// criterion from [BKSS 90].
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Corners returns the four corner points of r in counterclockwise order.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// ContainsPoint reports whether p lies in the closed region r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Contains reports whether s lies entirely inside the closed region r.
// An empty s is contained in everything.
func (r Rect) Contains(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the closed regions r and s share at least one
// point. Touching edges count as intersecting, mirroring the closed-region
// join predicate.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the common region of r and s, which is empty when
// they do not intersect.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the minimum bounding rectangle of r ∪ s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the minimum bounding rectangle of r ∪ {p}.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{p.X, p.Y, p.X, p.Y})
}

// Enlargement returns the area increase of r needed to include s, the
// Guttman ChooseSubtree criterion.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area of the common region of r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersection(s).Area() }

// Dist returns the Euclidean distance between the closed regions r and s:
// 0 when they intersect, +Inf when either is empty. Because the MBR is a
// superset of its object, the MBR distance is a lower bound of the region
// distance — the step 1 pruning measure of the within-distance join.
func (r Rect) Dist(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(s.MinX-r.MaxX, r.MinX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MaxY, r.MinY-s.MaxY))
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return math.Hypot(dx, dy)
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{r.MinX + dx, r.MinY + dy, r.MaxX + dx, r.MaxY + dy}
}

// Expand returns r grown by d on every side (shrunk for negative d; the
// result is empty if the shrink eliminates the region).
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}
