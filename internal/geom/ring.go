package geom

import "math"

// Ring is a simple closed polygonal chain stored as an open vertex list:
// the closing edge from the last vertex back to the first is implicit.
// Outer boundaries are counterclockwise, holes clockwise; NewRing
// normalizes an arbitrary input orientation to counterclockwise and
// Reversed flips it.
type Ring []Point

// NewRing copies pts into a counterclockwise ring. It panics if fewer than
// three vertices are supplied, because no simple polygon exists below that.
func NewRing(pts []Point) Ring {
	if len(pts) < 3 {
		panic("geom: a ring needs at least 3 vertices")
	}
	r := make(Ring, len(pts))
	copy(r, pts)
	if r.SignedArea() < 0 {
		r.reverseInPlace()
	}
	return r
}

func (r Ring) reverseInPlace() {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}

// Reversed returns a copy of r with opposite orientation.
func (r Ring) Reversed() Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[len(r)-1-i] = p
	}
	return out
}

// Clone returns a deep copy of r.
func (r Ring) Clone() Ring {
	out := make(Ring, len(r))
	copy(out, r)
	return out
}

// Edge returns the i-th edge of r; the last edge closes the ring.
func (r Ring) Edge(i int) Segment {
	return Segment{r[i], r[(i+1)%len(r)]}
}

// SignedArea returns the shoelace area of r: positive for counterclockwise
// rings, negative for clockwise rings.
func (r Ring) SignedArea() float64 {
	var s float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return s / 2
}

// Area returns the absolute enclosed area of r.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports whether r is counterclockwise.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Bounds returns the minimum bounding rectangle of r.
func (r Ring) Bounds() Rect {
	return RectFromPoints(r...)
}

// Centroid returns the area centroid of r. For a degenerate (zero-area)
// ring it falls back to the vertex average.
func (r Ring) Centroid() Point {
	var cx, cy, a float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		w := r[i].X*r[j].Y - r[j].X*r[i].Y
		cx += (r[i].X + r[j].X) * w
		cy += (r[i].Y + r[j].Y) * w
		a += w
	}
	if math.Abs(a) < Eps {
		for _, p := range r {
			cx += p.X
			cy += p.Y
		}
		return Point{cx / float64(n), cy / float64(n)}
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// OnBoundary reports whether p lies on one of r's edges.
func (r Ring) OnBoundary(p Point) bool {
	for i := range r {
		if r.Edge(i).ContainsPoint(p) {
			return true
		}
	}
	return false
}

// ContainsPoint reports whether p lies in the closed region bounded by r
// (boundary points are contained). It uses the even–odd crossing rule,
// which is correct for any simple ring regardless of orientation. This is
// the "point-in-polygon test" whose auxiliary horizontal-line intersection
// tests are counted and weighted in Table 6.
func (r Ring) ContainsPoint(p Point) bool {
	if r.OnBoundary(p) {
		return true
	}
	return r.containsInterior(p)
}

// containsInterior runs the crossing-number test without the boundary
// pre-check. Callers must ensure p is not on the boundary.
func (r Ring) containsInterior(p Point) bool {
	inside := false
	n := len(r)
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := r[i], r[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xint := pi.X + (p.Y-pi.Y)*(pj.X-pi.X)/(pj.Y-pi.Y)
			if p.X < xint {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// IsConvex reports whether the ring is convex (no reflex vertex). Collinear
// triples are tolerated.
func (r Ring) IsConvex() bool {
	n := len(r)
	sign := 0
	for i := 0; i < n; i++ {
		o := Orientation(r[i], r[(i+1)%n], r[(i+2)%n])
		if o == 0 {
			continue
		}
		if sign == 0 {
			sign = o
		} else if o != sign {
			return false
		}
	}
	return true
}

// SelfIntersects reports whether any two non-adjacent edges of r intersect.
// It is quadratic and intended for validation (tests and the data
// generator), not for query processing.
func (r Ring) SelfIntersects() bool {
	n := len(r)
	for i := 0; i < n; i++ {
		ei := r.Edge(i)
		for j := i + 1; j < n; j++ {
			// Skip adjacent edges (they share a vertex by construction).
			if j == i || (j+1)%n == i || (i+1)%n == j {
				continue
			}
			if ei.Intersects(r.Edge(j)) {
				return true
			}
		}
	}
	return false
}

// Translate returns a copy of r shifted by (dx, dy).
func (r Ring) Translate(dx, dy float64) Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = Point{p.X + dx, p.Y + dy}
	}
	return out
}

// Transform returns a copy of r with f applied to every vertex.
func (r Ring) Transform(f func(Point) Point) Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = f(p)
	}
	return out
}
