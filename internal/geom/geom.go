// Package geom provides the two-dimensional geometry kernel underlying the
// multi-step spatial join processor: points, rectangles, line segments,
// rings and polygons with holes, together with the exact predicates
// (orientation, segment intersection, point location, region intersection)
// that every higher layer builds on.
//
// Conventions
//
//   - Coordinates are float64. The kernel uses a small absolute tolerance
//     (Eps) only where a strict comparison would make boundary cases
//     unstable; all set predicates treat geometries as closed point sets,
//     so touching boundaries count as intersecting. This matches the
//     paper's intersection-join semantics, where "obj_A ∩ obj_B ≠ ∅" is
//     evaluated on closed polygonal regions.
//   - Rings are stored as open vertex lists (the closing edge from the
//     last vertex back to the first is implicit) and are oriented
//     counterclockwise for outer boundaries and clockwise for holes;
//     constructors normalize orientation.
package geom

import "math"

// Eps is the absolute tolerance used by predicates that would otherwise be
// unstable under floating-point rounding (e.g. collinearity tests). It is
// deliberately tiny: the kernel is not a robust-arithmetic kernel, but the
// data generator keeps coordinates well conditioned (unit data space,
// no near-degenerate inputs), which is the same regime as the paper's
// cartographic data.
const Eps = 1e-12

// Point is a location in the two-dimensional data space.
type Point struct {
	X, Y float64
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q interpreted as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// CrossVec returns the z component of the cross product of p and q
// interpreted as vectors.
func (p Point) CrossVec(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p interpreted as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Rotate returns p rotated by angle rad (radians) about the origin.
func (p Point) Rotate(rad float64) Point {
	s, c := math.Sincos(rad)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// RotateAround returns p rotated by angle rad about the pivot c.
func (p Point) RotateAround(rad float64, c Point) Point {
	return p.Sub(c).Rotate(rad).Add(c)
}

// Cross returns the z component of (a-o) × (b-o): positive when the turn
// o→a→b is counterclockwise, negative when clockwise, and zero when the
// three points are collinear.
func Cross(o, a, b Point) float64 {
	return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
}

// Orientation classifies the turn o→a→b as counterclockwise (+1),
// clockwise (-1) or collinear (0) using the Eps tolerance.
func Orientation(o, a, b Point) int {
	c := Cross(o, a, b)
	switch {
	case c > Eps:
		return 1
	case c < -Eps:
		return -1
	default:
		return 0
	}
}
