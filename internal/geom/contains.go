package geom

// ContainsPolygon reports whether the closed region of p contains the
// closed region of q — the inclusion predicate of section 2.2 ("for other
// predicates, e.g. inclusion, a similar approach can be used").
//
// The test mirrors the intersection ground truth: q ⊆ p iff
//
//  1. MBR(q) ⊆ MBR(p) (pretest),
//  2. no edge of q properly crosses an edge of p (touching allowed:
//     closed-region semantics),
//  3. every vertex of q lies in p, and
//  4. no hole of p lies strictly inside q (otherwise part of q's region
//     sits inside the hole, outside p).
func (p *Polygon) ContainsPolygon(q *Polygon) bool {
	if !p.Bounds().Contains(q.Bounds()) {
		return false
	}
	var pe, qe []Segment
	pe = p.Edges(pe)
	qe = q.Edges(qe)
	for _, eq := range qe {
		qb := eq.Bounds()
		for _, ep := range pe {
			if qb.Intersects(ep.Bounds()) && properCross(eq, ep) {
				return false
			}
		}
	}
	var qv []Point
	qv = q.Vertices(qv)
	for _, v := range qv {
		if !p.ContainsPoint(v) {
			return false
		}
	}
	// A hole of p strictly inside q would carve the containment.
	for _, h := range p.Holes {
		inside := true
		for _, v := range h {
			if !q.ContainsPoint(v) {
				inside = false
				break
			}
		}
		if inside && len(h) > 0 {
			// The hole rim lies in q; if its interior is not part of q's
			// own holes, q covers the hole and is not contained. A hole of
			// q coinciding with the hole of p keeps containment; testing
			// the hole centroid against q decides.
			c := h.Centroid()
			if q.ContainsPoint(c) && !p.ContainsPoint(c) {
				return false
			}
		}
	}
	return true
}

// properCross reports whether two segments cross at a point interior to
// both (touching endpoints and collinear overlaps do not count — those are
// permitted for closed-region containment).
func properCross(a, b Segment) bool {
	o1 := Orientation(a.A, a.B, b.A)
	o2 := Orientation(a.A, a.B, b.B)
	o3 := Orientation(b.A, b.B, a.A)
	o4 := Orientation(b.A, b.B, a.B)
	return o1*o2 < 0 && o3*o4 < 0
}
