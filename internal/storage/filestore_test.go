package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func tempStore(t *testing.T, slot, frames int, policy Policy) (*FileStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.sjps")
	fs, err := CreateFileStore(path, slot, frames, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs, path
}

func TestFileStoreReadsBackWrites(t *testing.T) {
	fs, path := tempStore(t, 64, 4, LRU)
	var want [][]byte
	for i := 0; i < 10; i++ {
		page := bytes.Repeat([]byte{byte(i + 1)}, 40)
		id, err := fs.AppendPage(page)
		if err != nil {
			t.Fatal(err)
		}
		if id != PageID(i) {
			t.Fatalf("AppendPage returned page %d, want %d", id, i)
		}
		padded := make([]byte, 64)
		copy(padded, page)
		want = append(want, padded)
	}
	check := func(fs *FileStore) {
		t.Helper()
		for i, w := range want {
			got, err := fs.ReadPage(PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, w) {
				t.Fatalf("page %d content differs", i)
			}
		}
	}
	check(fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the header carries the slot size; contents must persist.
	re, err := OpenFileStore(path, 4, LRU)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.SlotBytes() != 64 || re.Pages() != 10 {
		t.Fatalf("reopened store: slot %d pages %d, want 64/10", re.SlotBytes(), re.Pages())
	}
	check(re)
}

func TestFileStoreAccountingMatchesCountingStore(t *testing.T) {
	// The tentpole invariant: on the same access sequence and frame
	// count, the disk-backed store's hit/miss accounting is
	// byte-for-byte identical to the counting simulator's, under every
	// replacement policy.
	rng := rand.New(rand.NewSource(42))
	trace := make([]PageID, 4000)
	for i := range trace {
		trace[i] = PageID(rng.Intn(40)) // 40 pages through 8 frames
	}
	for _, pol := range []Policy{LRU, FIFO, Clock} {
		fs, _ := tempStore(t, 128, 8, pol)
		for i := 0; i < 40; i++ {
			if _, err := fs.AppendPage([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		fs.Clear() // writes must not perturb the accounting
		sim := NewBufferFrames(8, pol)
		for _, id := range trace {
			fs.Access(id)
			sim.Access(id)
		}
		if err := fs.Err(); err != nil {
			t.Fatal(err)
		}
		if fs.Hits() != sim.Hits() || fs.Misses() != sim.Misses() {
			t.Errorf("%v: file store %d/%d, simulator %d/%d",
				pol, fs.Hits(), fs.Misses(), sim.Hits(), sim.Misses())
		}
	}
}

func TestFileStoreZeroFillsUnwrittenPages(t *testing.T) {
	fs, _ := tempStore(t, 32, 2, LRU)
	got, err := fs.ReadPage(99)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Error("unwritten page must read as zeros")
	}
	if fs.Misses() != 1 {
		t.Errorf("implicit page fault must count as a miss; misses=%d", fs.Misses())
	}
}

func TestFileStoreWriteThrough(t *testing.T) {
	fs, _ := tempStore(t, 16, 4, LRU)
	if _, err := fs.AppendPage([]byte("old")); err != nil {
		t.Fatal(err)
	}
	fs.Access(0) // fault it in
	if err := fs.WritePage(0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadPage(0) // hit: must see the new bytes
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(got, "\x00")) != "new" {
		t.Errorf("cached page not updated on write: %q", got)
	}
	if fs.Misses() != 1 {
		t.Errorf("write-through must not fault; misses=%d", fs.Misses())
	}
}

func TestFileStoreRestoreFaultsLazily(t *testing.T) {
	fs, _ := tempStore(t, 16, 2, LRU)
	fs.AppendPage([]byte("a"))
	fs.AppendPage([]byte("b"))
	fs.Access(0)
	fs.Access(1)
	st := fs.State()
	fs.Clear()
	fs.Restore(st)
	// Restored frames have no bytes yet; reading them is a hit that
	// fills lazily from disk.
	got, err := fs.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Errorf("lazy fill read %q", got[:1])
	}
	if fs.Misses() != 0 || fs.Hits() != 1 {
		t.Errorf("restored-page read must be a hit: %d/%d", fs.Hits(), fs.Misses())
	}
}

func TestFileStoreRejectsBadInputs(t *testing.T) {
	fs, path := tempStore(t, 16, 2, LRU)
	if _, err := fs.ReadPage(-1); err == nil {
		t.Error("negative page read must fail")
	}
	if err := fs.WritePage(-1, nil); err == nil {
		t.Error("negative page write must fail")
	}
	if err := fs.WritePage(0, make([]byte, 17)); err == nil {
		t.Error("oversized page write must fail")
	}
	if _, err := CreateFileStore(filepath.Join(t.TempDir(), "x"), 0, 1, LRU); err == nil {
		t.Error("zero slot size must fail")
	}

	// Corrupt header: bad magic.
	if err := os.WriteFile(path, []byte("not a page store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, 2, LRU); !errors.Is(err, ErrBadStore) {
		t.Errorf("bad magic: err = %v, want ErrBadStore", err)
	}
	// Truncated header.
	if err := os.WriteFile(path, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, 2, LRU); !errors.Is(err, ErrBadStore) {
		t.Errorf("truncated header: err = %v, want ErrBadStore", err)
	}
	// Absurd slot size in the header: must be rejected at open, before
	// any ReadPage can allocate it.
	hdr := make([]byte, fileHeaderBytes)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0x53, 0x50, 0x4A, 0x53 // fileMagic LE
	hdr[4] = fileVersion
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xF0, 0xFF, 0xFF, 0xFF // slot ≈ 4 GiB
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, 2, LRU); !errors.Is(err, ErrBadStore) {
		t.Errorf("oversized slot: err = %v, want ErrBadStore", err)
	}
}
