package storage

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
)

// accessPattern is a deterministic page sequence with reuse, designed to
// produce a non-trivial hit/miss mix on a small buffer.
func accessPattern(n int) []PageID {
	seq := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		seq = append(seq, PageID((i*7+3)%11), PageID(i%5))
	}
	return seq
}

func TestSessionCountersMatchSharedReplay(t *testing.T) {
	for _, policy := range []Policy{LRU, FIFO, Clock} {
		store := NewBufferFrames(4, policy)
		// Warm the store so sessions snapshot a non-empty state.
		for _, id := range accessPattern(20) {
			store.Access(id)
		}
		warm := store.State()
		seq := accessPattern(50)

		// Reference: a shared-mode replay from the warmed state.
		ref := NewBufferFrames(4, policy)
		ref.Restore(warm)
		for _, id := range seq {
			ref.Access(id)
		}

		sess := NewSession(store)
		for _, id := range seq {
			sess.Access(id)
		}
		if sess.Hits() != ref.Hits() || sess.Misses() != ref.Misses() {
			t.Errorf("%v: session hits/misses %d/%d, shared replay %d/%d",
				policy, sess.Hits(), sess.Misses(), ref.Hits(), ref.Misses())
		}
		if sess.Accesses() != int64(len(seq)) {
			t.Errorf("%v: accesses %d, want %d", policy, sess.Accesses(), len(seq))
		}
		// The shared store is untouched by the session.
		if got := store.State(); !bufferStatesEqual(got, warm) {
			t.Errorf("%v: session perturbed the shared buffer state", policy)
		}
	}
}

func bufferStatesEqual(a, b BufferState) bool {
	if a.Hand != b.Hand || len(a.Frames) != len(b.Frames) {
		return false
	}
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			return false
		}
	}
	return true
}

func TestSessionsAreIsolated(t *testing.T) {
	store := NewBufferFrames(3, LRU)
	seqA := accessPattern(40)
	seqB := make([]PageID, len(seqA))
	for i, id := range seqA {
		seqB[i] = id + 100 // disjoint page space
	}

	solo := NewSession(store)
	for _, id := range seqA {
		solo.Access(id)
	}

	// Interleave two sessions; each must report exactly its solo counters.
	a, b := NewSession(store), NewSession(store)
	for i := range seqA {
		a.Access(seqA[i])
		b.Access(seqB[i])
	}
	if a.Hits() != solo.Hits() || a.Misses() != solo.Misses() {
		t.Errorf("interleaved session diverged: %d/%d vs solo %d/%d",
			a.Hits(), a.Misses(), solo.Hits(), solo.Misses())
	}
	if b.Hits() != solo.Hits() || b.Misses() != solo.Misses() {
		t.Errorf("disjoint-page session diverged: %d/%d vs solo %d/%d",
			b.Hits(), b.Misses(), solo.Hits(), solo.Misses())
	}
}

func TestSessionResetCounters(t *testing.T) {
	store := NewBufferFrames(2, LRU)
	sess := NewSession(store)
	sess.Access(1)
	sess.Access(1)
	sess.ResetCounters()
	if sess.Hits() != 0 || sess.Misses() != 0 {
		t.Fatal("ResetCounters must zero the session counters")
	}
	sess.Access(1)
	if sess.Hits() != 1 || sess.Misses() != 0 {
		t.Error("simulated buffer contents must survive ResetCounters")
	}
}

func TestFileStoreSessionsConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.sjps")
	fs, err := CreateFileStore(path, 64, 4, LRU)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const pages = 16
	for i := 0; i < pages; i++ {
		content := bytes.Repeat([]byte{byte(i + 1)}, 64)
		if _, err := fs.AppendPage(content); err != nil {
			t.Fatal(err)
		}
	}
	seq := accessPattern(200)

	solo := NewSession(fs)
	for _, id := range seq {
		solo.Access(id)
	}
	if err := solo.Err(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := NewSession(fs)
			for _, id := range seq {
				sess.Access(id)
			}
			if sess.Hits() != solo.Hits() || sess.Misses() != solo.Misses() {
				t.Errorf("goroutine %d: hits/misses %d/%d, want %d/%d",
					g, sess.Hits(), sess.Misses(), solo.Hits(), solo.Misses())
			}
			errs[g] = sess.Err()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}

	// ReadShared serves the true page bytes and never perturbs the
	// shared accounting.
	if fs.Accesses() != 0 {
		t.Errorf("sessions must not touch the shared counters (accesses %d)", fs.Accesses())
	}
	data, err := fs.ReadShared(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{4}, 64)) {
		t.Error("ReadShared returned wrong page bytes")
	}
	if fs.Accesses() != 0 {
		t.Error("ReadShared must not count as an access")
	}
}

func TestFileStoreReadSharedServesFromCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.sjps")
	fs, err := CreateFileStore(path, 32, 4, LRU)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.AppendPage([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Fault the page into the shared cache via the accounting path, then
	// read it through the session path: same bytes, same backing frame.
	cached, err := fs.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := fs.ReadShared(0)
	if err != nil {
		t.Fatal(err)
	}
	if &cached[0] != &shared[0] {
		t.Error("ReadShared must serve the resident frame without a disk read")
	}
}
