package storage

import "spatialjoin/internal/resilience/fault"

// A Session is the per-query page-access context that makes one opened
// store serve many concurrent queries. The paper's buffer accounting is
// inherently stateful — every Access mutates the replacement structures —
// so a shared PageStore supports exactly one query at a time. A Session
// privatizes that state: it snapshots the store's buffer contents at
// creation and runs its own replacement simulation (same frame count,
// same policy) with its own hit/miss counters, leaving the shared store
// untouched.
//
// Consequences, both deliberate:
//
//   - Isolation. N sessions on one store never observe each other: each
//     query's Stats are exactly what a sequential query from the same
//     starting buffer state would report, regardless of what runs
//     concurrently.
//   - Determinism. Because sessions never write back, the store's
//     snapshot is stable while only sessions are active, so every
//     session created from it starts from the identical state — the
//     serving layer's per-request stats are reproducible.
//
// A Session over a disk-backed store (FileStore) additionally performs a
// real page read on every simulated miss, through the store's
// concurrency-safe shared frame cache with single-flight loading — so
// concurrent queries touch the disk like a real buffered server would,
// without duplicating in-flight I/O and without perturbing the shared
// accounting state.
//
// A Session is itself not safe for concurrent use; create one per query.
type Session struct {
	sim *BufferManager
	src ByteSource
	err error
}

// Session implements Accessor.
var _ Accessor = (*Session)(nil)

// ByteSource is implemented by stores that can serve page bytes to
// concurrent sessions. FileStore implements it; the counting
// BufferManager does not (it models accounting only, there are no
// bytes).
type ByteSource interface {
	// ReadShared returns the bytes of a page without touching the
	// store's accounting state. It must be safe for concurrent use.
	ReadShared(id PageID) ([]byte, error)
}

// NewSession creates a per-query access context on store: a private
// replacement simulation seeded from the store's current buffer
// snapshot, with counters starting at zero. If the store serves bytes
// (FileStore), every simulated miss reads the page through the store's
// shared cache.
//
// Creating sessions concurrently is safe as long as no query is
// concurrently mutating the store in shared mode (sessions themselves
// never mutate it).
func NewSession(store PageStore) *Session {
	sim := NewBufferFrames(store.Frames(), store.Policy())
	sim.Restore(store.State())
	s := &Session{sim: sim}
	if src, ok := store.(ByteSource); ok {
		s.src = src
	}
	return s
}

// Access touches a page in the session's private simulation; on a miss
// over a byte-serving store the page is read from the shared cache or
// disk. Each real read passes the "page-read" fault site first, so the
// chaos harness can model slow disks, failed reads and pages that come
// back corrupt; like a real read error, an injected one parks in Err()
// for the query layer to surface after the traversal.
func (s *Session) Access(id PageID) {
	before := s.sim.misses.Load()
	s.sim.Access(id)
	if s.src != nil && s.sim.misses.Load() != before {
		if ferr := fault.Check("page-read"); ferr != nil {
			if s.err == nil {
				s.err = ferr
			}
			return
		}
		if _, err := s.src.ReadShared(id); err != nil && s.err == nil {
			s.err = err
		}
	}
}

// Hits returns the session's buffered accesses.
func (s *Session) Hits() int64 { return s.sim.Hits() }

// Misses returns the session's page accesses that went to disk — the
// paper's page-access count, isolated to this query.
func (s *Session) Misses() int64 { return s.sim.Misses() }

// Accesses returns the session's total page touches.
func (s *Session) Accesses() int64 { return s.sim.Accesses() }

// ResetCounters zeroes the session's statistics without dropping its
// simulated buffer contents, so one session can measure several queries
// back to back.
func (s *Session) ResetCounters() { s.sim.ResetCounters() }

// Err returns the first I/O error a disk-backed read produced, if any
// (always nil over a counting store).
func (s *Session) Err() error { return s.err }
