package storage

import "testing"

func TestBufferBasics(t *testing.T) {
	b := NewBufferManager(4096, 1024) // 4 frames
	if b.Frames() != 4 {
		t.Fatalf("Frames = %d, want 4", b.Frames())
	}
	for i := 0; i < 4; i++ {
		b.Access(PageID(i))
	}
	if b.Misses() != 4 || b.Hits() != 0 {
		t.Fatalf("cold accesses: misses=%d hits=%d", b.Misses(), b.Hits())
	}
	// Re-access: all hits.
	for i := 0; i < 4; i++ {
		b.Access(PageID(i))
	}
	if b.Hits() != 4 {
		t.Fatalf("warm accesses: hits=%d, want 4", b.Hits())
	}
	if b.Accesses() != 8 {
		t.Fatalf("Accesses = %d, want 8", b.Accesses())
	}
}

func TestBufferEvictsLRU(t *testing.T) {
	b := NewBufferManager(2048, 1024) // 2 frames
	b.Access(1)
	b.Access(2)
	b.Access(1) // 1 is now most recent
	b.Access(3) // evicts 2
	b.ResetCounters()
	b.Access(1)
	if b.Misses() != 0 {
		t.Error("page 1 must still be buffered")
	}
	b.Access(2)
	if b.Misses() != 1 {
		t.Error("page 2 must have been evicted")
	}
}

func TestBufferSingleFrame(t *testing.T) {
	b := NewBufferManager(100, 1024) // under one page: clamped to 1 frame
	if b.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", b.Frames())
	}
	b.Access(1)
	b.Access(2)
	b.Access(1)
	if b.Misses() != 3 {
		t.Errorf("alternating pages through 1 frame: misses=%d, want 3", b.Misses())
	}
}

func TestBufferClearAndReset(t *testing.T) {
	b := NewBufferManager(4096, 1024)
	b.Access(1)
	b.Access(1)
	b.ResetCounters()
	if b.Hits() != 0 || b.Misses() != 0 {
		t.Error("ResetCounters must zero stats")
	}
	b.Access(1)
	if b.Hits() != 1 {
		t.Error("ResetCounters must keep buffer contents")
	}
	b.Clear()
	b.Access(1)
	if b.Misses() != 1 {
		t.Error("Clear must drop buffer contents")
	}
}

func TestFIFODoesNotPromoteOnHit(t *testing.T) {
	b := NewBufferManagerPolicy(2048, 1024, FIFO) // 2 frames
	b.Access(1)
	b.Access(2)
	b.Access(1) // hit, but FIFO keeps 1 the oldest
	b.Access(3) // evicts 1 (oldest), not 2
	b.ResetCounters()
	b.Access(2)
	if b.Misses() != 0 {
		t.Error("page 2 must still be buffered under FIFO")
	}
	b.Access(1)
	if b.Misses() != 1 {
		t.Error("page 1 must have been evicted under FIFO despite the hit")
	}
	if b.Policy() != FIFO || b.Policy().String() != "FIFO" {
		t.Error("policy accessors wrong")
	}
}

func TestClockGrantsSecondChance(t *testing.T) {
	b := NewBufferManagerPolicy(2048, 1024, Clock) // 2 frames
	b.Access(1)
	b.Access(2)
	b.Access(1) // sets 1's reference bit
	b.Access(3) // clock sweeps: 1 referenced → spared; evicts 2
	b.ResetCounters()
	b.Access(1)
	if b.Misses() != 0 {
		t.Error("referenced page 1 must survive the clock sweep")
	}
	b.Access(2)
	if b.Misses() != 1 {
		t.Error("unreferenced page 2 must have been evicted")
	}
}

func TestClockTerminatesWhenAllReferenced(t *testing.T) {
	b := NewBufferManagerPolicy(3072, 1024, Clock) // 3 frames
	for _, id := range []PageID{1, 2, 3} {
		b.Access(id)
		b.Access(id) // set every reference bit
	}
	b.Access(4) // must clear bits and still evict something
	if len(b.table) != 3 {
		t.Fatalf("buffer holds %d frames, want 3", len(b.table))
	}
}

func TestPoliciesAgreeOnColdMisses(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Clock} {
		b := NewBufferManagerPolicy(4096, 1024, pol)
		for i := 0; i < 16; i++ {
			b.Access(PageID(i))
		}
		if b.Misses() != 16 {
			t.Errorf("%v: cold misses = %d, want 16", pol, b.Misses())
		}
	}
}

func TestSingleFrameAllPolicies(t *testing.T) {
	// One frame: every access to a different page evicts the previous
	// one, under every policy, and no sweep or list operation may hang
	// or corrupt the frame table.
	for _, pol := range []Policy{LRU, FIFO, Clock} {
		b := NewBufferManagerPolicy(1024, 1024, pol)
		if b.Frames() != 1 {
			t.Fatalf("%v: Frames = %d, want 1", pol, b.Frames())
		}
		for round := 0; round < 3; round++ {
			for id := PageID(1); id <= 3; id++ {
				b.Access(id)
			}
		}
		if len(b.table) != 1 {
			t.Errorf("%v: %d resident pages in a 1-frame buffer", pol, len(b.table))
		}
		if b.Misses() != 9 {
			t.Errorf("%v: misses = %d, want 9 (no page can survive)", pol, b.Misses())
		}
	}
}

func TestSingleFrameClockReferencedEviction(t *testing.T) {
	// One frame, resident page referenced: the sweep clears its bit,
	// moves on, and evicts the just-faulted page instead — the incoming
	// page never becomes resident. This pins down the sweep's defined
	// behavior at its smallest size.
	b := NewBufferManagerPolicy(1024, 1024, Clock)
	b.Access(1)
	b.Access(1) // sets 1's reference bit
	b.Access(2) // sweep: 1 referenced → spared; the new page 2 is evicted
	b.ResetCounters()
	b.Access(1)
	if b.Misses() != 0 {
		t.Error("page 1 must have survived the sweep")
	}
	b.Access(2)
	if b.Misses() != 1 {
		t.Error("page 2 must not be resident")
	}
}

func TestClockHandSurvivesClear(t *testing.T) {
	// The hand must not dangle into freed frames after Clear: a full
	// refill and eviction cycle after Clear must behave like a fresh
	// buffer.
	b := NewBufferManagerPolicy(2048, 1024, Clock) // 2 frames
	for id := PageID(1); id <= 5; id++ {
		b.Access(id) // force sweeps so the hand points somewhere
	}
	b.Clear()
	if b.hand != nil {
		t.Fatal("Clear must reset the clock hand")
	}
	b.Access(10)
	b.Access(11)
	b.Access(10) // reference 10
	b.Access(12) // sweep: spares 10, evicts 11
	b.ResetCounters()
	b.Access(10)
	if b.Misses() != 0 {
		t.Error("referenced page 10 must survive the post-Clear sweep")
	}
}

func TestClockHandValidAcrossEvictionSweeps(t *testing.T) {
	// Repeated sweeps: the hand must always point at a live frame (or
	// nil), never at an evicted one.
	b := NewBufferManagerPolicy(3072, 1024, Clock) // 3 frames
	for i := 0; i < 200; i++ {
		b.Access(PageID(i % 7))
		if i%3 == 0 {
			b.Access(PageID(i % 7)) // sprinkle reference bits
		}
		if b.hand != nil {
			if _, live := b.table[b.hand.id]; !live {
				t.Fatalf("after access %d: clock hand points at evicted page %d", i, b.hand.id)
			}
		}
		if len(b.table) > b.Frames() {
			t.Fatalf("after access %d: %d resident pages exceed %d frames", i, len(b.table), b.Frames())
		}
	}
}

func TestFIFOvsLRUDivergence(t *testing.T) {
	// Scripted trace where re-referencing a page saves it under LRU but
	// not under FIFO: after touching 1,2 then re-touching 1, page 3
	// evicts 2 under LRU but 1 under FIFO, and the tails of the trace
	// diverge in hit counts.
	trace := []PageID{1, 2, 1, 3, 1, 2}
	run := func(pol Policy) (hits, misses int64) {
		b := NewBufferManagerPolicy(2048, 1024, pol) // 2 frames
		for _, id := range trace {
			b.Access(id)
		}
		return b.Hits(), b.Misses()
	}
	lruHits, lruMisses := run(LRU)
	fifoHits, fifoMisses := run(FIFO)
	// LRU: 1m 2m 1h 3m(evict 2) 1h 2m → 2 hits, 4 misses.
	if lruHits != 2 || lruMisses != 4 {
		t.Errorf("LRU: %d hits %d misses, want 2/4", lruHits, lruMisses)
	}
	// FIFO: 1m 2m 1h 3m(evict 1) 1m(evict 2) 2m → 1 hit, 5 misses.
	if fifoHits != 1 || fifoMisses != 5 {
		t.Errorf("FIFO: %d hits %d misses, want 1/5", fifoHits, fifoMisses)
	}
	if lruHits <= fifoHits {
		t.Error("trace must favor LRU over FIFO")
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	// State/Restore must reproduce the exact eviction behavior: run a
	// prefix, snapshot, run the suffix; then restore the snapshot into
	// a fresh buffer and run the same suffix — identical hits/misses.
	prefix := []PageID{1, 2, 3, 1, 4, 2, 5, 1}
	suffix := []PageID{2, 6, 1, 3, 4, 5, 1, 2, 7, 6}
	for _, pol := range []Policy{LRU, FIFO, Clock} {
		b := NewBufferManagerPolicy(3072, 1024, pol) // 3 frames
		for _, id := range prefix {
			b.Access(id)
		}
		st := b.State()
		b.ResetCounters()
		for _, id := range suffix {
			b.Access(id)
		}
		wantH, wantM := b.Hits(), b.Misses()

		fresh := NewBufferManagerPolicy(3072, 1024, pol)
		fresh.Restore(st)
		for _, id := range suffix {
			fresh.Access(id)
		}
		if fresh.Hits() != wantH || fresh.Misses() != wantM {
			t.Errorf("%v: restored replay %d/%d, want %d/%d", pol, fresh.Hits(), fresh.Misses(), wantH, wantM)
		}
	}
}

func TestRestoreDropsOverflowFrames(t *testing.T) {
	st := BufferState{Hand: -1}
	for id := PageID(1); id <= 8; id++ {
		st.Frames = append(st.Frames, FrameState{ID: id})
	}
	b := NewBufferManagerPolicy(2048, 1024, LRU) // 2 frames
	b.Restore(st)
	if len(b.table) != 2 {
		t.Fatalf("restored %d frames into a 2-frame buffer", len(b.table))
	}
	b.Access(7) // the two newest (7, 8) must have been kept
	b.Access(8)
	if b.Misses() != 0 {
		t.Errorf("newest frames must survive a truncating restore; misses=%d", b.Misses())
	}
}

func TestBufferScanPattern(t *testing.T) {
	// Sequential scan over more pages than frames: every access misses.
	b := NewBufferManager(8192, 1024) // 8 frames
	for round := 0; round < 3; round++ {
		for i := 0; i < 16; i++ {
			b.Access(PageID(i))
		}
	}
	if b.Hits() != 0 {
		t.Errorf("LRU must thrash on a sequential over-capacity scan; hits=%d", b.Hits())
	}
}
