package storage

import "testing"

func TestBufferBasics(t *testing.T) {
	b := NewBufferManager(4096, 1024) // 4 frames
	if b.Frames() != 4 {
		t.Fatalf("Frames = %d, want 4", b.Frames())
	}
	for i := 0; i < 4; i++ {
		b.Access(PageID(i))
	}
	if b.Misses() != 4 || b.Hits() != 0 {
		t.Fatalf("cold accesses: misses=%d hits=%d", b.Misses(), b.Hits())
	}
	// Re-access: all hits.
	for i := 0; i < 4; i++ {
		b.Access(PageID(i))
	}
	if b.Hits() != 4 {
		t.Fatalf("warm accesses: hits=%d, want 4", b.Hits())
	}
	if b.Accesses() != 8 {
		t.Fatalf("Accesses = %d, want 8", b.Accesses())
	}
}

func TestBufferEvictsLRU(t *testing.T) {
	b := NewBufferManager(2048, 1024) // 2 frames
	b.Access(1)
	b.Access(2)
	b.Access(1) // 1 is now most recent
	b.Access(3) // evicts 2
	b.ResetCounters()
	b.Access(1)
	if b.Misses() != 0 {
		t.Error("page 1 must still be buffered")
	}
	b.Access(2)
	if b.Misses() != 1 {
		t.Error("page 2 must have been evicted")
	}
}

func TestBufferSingleFrame(t *testing.T) {
	b := NewBufferManager(100, 1024) // under one page: clamped to 1 frame
	if b.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", b.Frames())
	}
	b.Access(1)
	b.Access(2)
	b.Access(1)
	if b.Misses() != 3 {
		t.Errorf("alternating pages through 1 frame: misses=%d, want 3", b.Misses())
	}
}

func TestBufferClearAndReset(t *testing.T) {
	b := NewBufferManager(4096, 1024)
	b.Access(1)
	b.Access(1)
	b.ResetCounters()
	if b.Hits() != 0 || b.Misses() != 0 {
		t.Error("ResetCounters must zero stats")
	}
	b.Access(1)
	if b.Hits() != 1 {
		t.Error("ResetCounters must keep buffer contents")
	}
	b.Clear()
	b.Access(1)
	if b.Misses() != 1 {
		t.Error("Clear must drop buffer contents")
	}
}

func TestFIFODoesNotPromoteOnHit(t *testing.T) {
	b := NewBufferManagerPolicy(2048, 1024, FIFO) // 2 frames
	b.Access(1)
	b.Access(2)
	b.Access(1) // hit, but FIFO keeps 1 the oldest
	b.Access(3) // evicts 1 (oldest), not 2
	b.ResetCounters()
	b.Access(2)
	if b.Misses() != 0 {
		t.Error("page 2 must still be buffered under FIFO")
	}
	b.Access(1)
	if b.Misses() != 1 {
		t.Error("page 1 must have been evicted under FIFO despite the hit")
	}
	if b.Policy() != FIFO || b.Policy().String() != "FIFO" {
		t.Error("policy accessors wrong")
	}
}

func TestClockGrantsSecondChance(t *testing.T) {
	b := NewBufferManagerPolicy(2048, 1024, Clock) // 2 frames
	b.Access(1)
	b.Access(2)
	b.Access(1) // sets 1's reference bit
	b.Access(3) // clock sweeps: 1 referenced → spared; evicts 2
	b.ResetCounters()
	b.Access(1)
	if b.Misses() != 0 {
		t.Error("referenced page 1 must survive the clock sweep")
	}
	b.Access(2)
	if b.Misses() != 1 {
		t.Error("unreferenced page 2 must have been evicted")
	}
}

func TestClockTerminatesWhenAllReferenced(t *testing.T) {
	b := NewBufferManagerPolicy(3072, 1024, Clock) // 3 frames
	for _, id := range []PageID{1, 2, 3} {
		b.Access(id)
		b.Access(id) // set every reference bit
	}
	b.Access(4) // must clear bits and still evict something
	if len(b.table) != 3 {
		t.Fatalf("buffer holds %d frames, want 3", len(b.table))
	}
}

func TestPoliciesAgreeOnColdMisses(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Clock} {
		b := NewBufferManagerPolicy(4096, 1024, pol)
		for i := 0; i < 16; i++ {
			b.Access(PageID(i))
		}
		if b.Misses() != 16 {
			t.Errorf("%v: cold misses = %d, want 16", pol, b.Misses())
		}
	}
}

func TestBufferScanPattern(t *testing.T) {
	// Sequential scan over more pages than frames: every access misses.
	b := NewBufferManager(8192, 1024) // 8 frames
	for round := 0; round < 3; round++ {
		for i := 0; i < 16; i++ {
			b.Access(PageID(i))
		}
	}
	if b.Hits() != 0 {
		t.Errorf("LRU must thrash on a sequential over-capacity scan; hits=%d", b.Hits())
	}
}
