// Package storage models the secondary-storage layer of the paper's
// experiments: page-granular access through an LRU buffer with page-access
// counting. The paper's I/O metric is the number of page accesses that
// miss the buffer (sections 3.4 and 5: page sizes of 2 and 4 KB, an LRU
// buffer of 128 KB, 10 ms per access); an in-memory counting buffer
// reproduces that metric exactly (see DESIGN.md, substitutions).
package storage

// PageID identifies one page of the simulated store.
type PageID int32

// InvalidPage is the zero value no allocated page ever gets.
const InvalidPage PageID = -1

// Policy selects the buffer replacement strategy. The paper uses LRU; the
// alternatives exist for the buffer-policy ablation.
type Policy int

// Replacement policies.
const (
	LRU   Policy = iota // evict the least recently used page
	FIFO                // evict the oldest page regardless of reuse
	Clock               // second-chance approximation of LRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Clock:
		return "Clock"
	default:
		return "Policy?"
	}
}

// BufferManager is a page buffer with hit/miss accounting. A miss models
// one disk access.
type BufferManager struct {
	frames int
	policy Policy
	table  map[PageID]*frameNode
	head   *frameNode // most recently used / newest
	tail   *frameNode // least recently used / oldest
	hand   *frameNode // clock hand (Clock policy)

	hits   int64
	misses int64
}

type frameNode struct {
	id         PageID
	prev, next *frameNode
	referenced bool // Clock policy second-chance bit
}

// NewBufferManager sizes an LRU buffer holding bufferBytes worth of pages
// of pageSize bytes each (at least one frame).
func NewBufferManager(bufferBytes, pageSize int) *BufferManager {
	return NewBufferManagerPolicy(bufferBytes, pageSize, LRU)
}

// NewBufferManagerPolicy sizes a buffer with an explicit replacement
// policy.
func NewBufferManagerPolicy(bufferBytes, pageSize int, policy Policy) *BufferManager {
	frames := bufferBytes / pageSize
	if frames < 1 {
		frames = 1
	}
	return &BufferManager{
		frames: frames,
		policy: policy,
		table:  make(map[PageID]*frameNode, frames),
	}
}

// Policy returns the replacement policy.
func (b *BufferManager) Policy() Policy { return b.policy }

// Frames returns the buffer capacity in pages.
func (b *BufferManager) Frames() int { return b.frames }

// Access touches a page: a buffered page is a hit (LRU moves it to the
// front, Clock sets its reference bit, FIFO does nothing); an unbuffered
// page is faulted in, evicting the policy's victim when the buffer is
// full (miss).
func (b *BufferManager) Access(id PageID) {
	if n, ok := b.table[id]; ok {
		b.hits++
		switch b.policy {
		case LRU:
			b.moveToFront(n)
		case Clock:
			n.referenced = true
		}
		return
	}
	b.misses++
	n := &frameNode{id: id}
	b.table[id] = n
	b.pushFront(n)
	if len(b.table) > b.frames {
		b.evict()
	}
}

// evict removes one page according to the policy.
func (b *BufferManager) evict() {
	switch b.policy {
	case Clock:
		// Sweep from the tail, granting one second chance per referenced
		// frame.
		if b.hand == nil {
			b.hand = b.tail
		}
		for {
			victim := b.hand
			if victim == nil {
				victim = b.tail
			}
			next := victim.prev // sweep from oldest toward newest
			if !victim.referenced {
				b.hand = next
				b.unlink(victim)
				delete(b.table, victim.id)
				return
			}
			victim.referenced = false
			if next == nil {
				next = b.tail
			}
			b.hand = next
		}
	default: // LRU and FIFO both evict the tail (least recent / oldest)
		evict := b.tail
		b.unlink(evict)
		delete(b.table, evict.id)
	}
}

// Hits returns the number of buffered accesses.
func (b *BufferManager) Hits() int64 { return b.hits }

// Misses returns the number of accesses that went to disk — the paper's
// page-access count.
func (b *BufferManager) Misses() int64 { return b.misses }

// Accesses returns the total number of page touches.
func (b *BufferManager) Accesses() int64 { return b.hits + b.misses }

// ResetCounters zeroes the statistics without dropping buffer contents,
// so a measurement can exclude index construction.
func (b *BufferManager) ResetCounters() {
	b.hits, b.misses = 0, 0
}

// Clear drops all buffered pages and zeroes the statistics.
func (b *BufferManager) Clear() {
	b.table = make(map[PageID]*frameNode, b.frames)
	b.head, b.tail, b.hand = nil, nil, nil
	b.hits, b.misses = 0, 0
}

func (b *BufferManager) pushFront(n *frameNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *BufferManager) unlink(n *frameNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *BufferManager) moveToFront(n *frameNode) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}
