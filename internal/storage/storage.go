// Package storage is the secondary-storage layer of the paper's
// experiments: page-granular access through a replacement-policy buffer
// with page-access counting. The paper's I/O metric is the number of page
// accesses that miss the buffer (sections 3.4 and 5: page sizes of 2 and
// 4 KB, an LRU buffer of 128 KB, 10 ms per access).
//
// The layer is pluggable behind the PageStore interface, with two
// implementations (see DESIGN.md at the repository root, "Substitutions"
// and "On-disk formats"):
//
//   - BufferManager, the in-memory counting simulator that reproduces the
//     paper's metric exactly without any disk, and
//   - FileStore, a disk-backed paged file whose reads go through the same
//     replacement logic, so its hit/miss accounting is byte-for-byte
//     identical to the simulator's on the same access sequence.
package storage

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// PageID identifies one page of the store.
type PageID int32

// InvalidPage is the zero value no allocated page ever gets.
const InvalidPage PageID = -1

// Accessor is the page-access face of one query: every node visit of a
// tree traversal is routed through an Accessor, which decides hit or
// miss and counts both. A PageStore is itself an Accessor — the shared,
// single-query mode in which one traversal at a time mutates the store's
// buffer directly, reproducing the paper's sequential accounting. A
// Session is the per-query alternative: a private replacement simulation
// seeded from a snapshot of the store, so N concurrent queries each
// carry their own isolated accounting (see NewSession).
type Accessor interface {
	// Access touches a page: a buffered page is a hit, an unbuffered page
	// is faulted in (a miss), evicting the policy's victim when full.
	Access(id PageID)
	// Hits returns the number of buffered accesses.
	Hits() int64
	// Misses returns the number of accesses that went to disk — the
	// paper's page-access count.
	Misses() int64
	// Accesses returns the total number of page touches.
	Accesses() int64
}

// PageStore is the pluggable buffered page substrate: a page-granular
// access path with hit/miss accounting. The R*-trees route every node
// visit through a PageStore; the counting BufferManager simulates the
// paper's buffered disk, while FileStore backs the same accounting with a
// real paged file.
//
// Used directly, a PageStore is the shared-mode Accessor of exactly one
// query at a time; wrap it in a Session (NewSession) for concurrent
// queries with isolated accounting.
type PageStore interface {
	Accessor
	// ResetCounters zeroes the statistics without dropping buffer
	// contents.
	ResetCounters()
	// Clear drops all buffered pages and zeroes the statistics.
	Clear()
	// Frames returns the buffer capacity in pages.
	Frames() int
	// Policy returns the replacement policy.
	Policy() Policy
	// State snapshots the buffer contents (not the counters), so a
	// persisted relation can resume in the exact buffer state it was
	// saved in.
	State() BufferState
	// Restore replaces the buffer contents with a snapshot taken by
	// State, without touching the counters.
	Restore(BufferState)
}

// Policy selects the buffer replacement strategy. The paper uses LRU; the
// alternatives exist for the buffer-policy ablation.
type Policy int

// Replacement policies.
const (
	LRU   Policy = iota // evict the least recently used page
	FIFO                // evict the oldest page regardless of reuse
	Clock               // second-chance approximation of LRU
)

// ParsePolicy parses a policy name (case-insensitively): "lru", "fifo"
// or "clock".
func ParsePolicy(s string) (Policy, error) {
	switch {
	case strings.EqualFold(s, "lru"):
		return LRU, nil
	case strings.EqualFold(s, "fifo"):
		return FIFO, nil
	case strings.EqualFold(s, "clock"):
		return Clock, nil
	}
	return 0, fmt.Errorf("storage: unknown replacement policy %q", s)
}

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Clock:
		return "Clock"
	default:
		return "Policy?"
	}
}

// BufferManager is a page buffer with hit/miss accounting. A miss models
// one disk access.
//
// The replacement structures are single-writer (one query at a time in
// shared mode, or one private simulation per Session), but the hit/miss
// counters are atomics: readers (statistics endpoints, concurrent
// sessions polling the shared store's totals) never need the owner's
// lock, which removes the main mutex contention from FileStore's shared
// read path while reporting exactly the same totals.
type BufferManager struct {
	frames int
	policy Policy
	table  map[PageID]*frameNode
	head   *frameNode // most recently used / newest
	tail   *frameNode // least recently used / oldest
	hand   *frameNode // clock hand (Clock policy)

	hits   atomic.Int64
	misses atomic.Int64

	// onEvict, when set, observes every eviction — FileStore uses it to
	// drop the evicted page's cached bytes. It must not call back into
	// the buffer.
	onEvict func(PageID)
}

// BufferManager implements PageStore.
var _ PageStore = (*BufferManager)(nil)

type frameNode struct {
	id         PageID
	prev, next *frameNode
	referenced bool // Clock policy second-chance bit
}

// NewBufferManager sizes an LRU buffer holding bufferBytes worth of pages
// of pageSize bytes each (at least one frame).
func NewBufferManager(bufferBytes, pageSize int) *BufferManager {
	return NewBufferManagerPolicy(bufferBytes, pageSize, LRU)
}

// NewBufferManagerPolicy sizes a buffer with an explicit replacement
// policy.
func NewBufferManagerPolicy(bufferBytes, pageSize int, policy Policy) *BufferManager {
	frames := bufferBytes / pageSize
	if frames < 1 {
		frames = 1
	}
	return &BufferManager{
		frames: frames,
		policy: policy,
		table:  make(map[PageID]*frameNode, frames),
	}
}

// Policy returns the replacement policy.
func (b *BufferManager) Policy() Policy { return b.policy }

// Frames returns the buffer capacity in pages.
func (b *BufferManager) Frames() int { return b.frames }

// Access touches a page: a buffered page is a hit (LRU moves it to the
// front, Clock sets its reference bit, FIFO does nothing); an unbuffered
// page is faulted in, evicting the policy's victim when the buffer is
// full (miss).
func (b *BufferManager) Access(id PageID) {
	if n, ok := b.table[id]; ok {
		b.hits.Add(1)
		switch b.policy {
		case LRU:
			b.moveToFront(n)
		case Clock:
			n.referenced = true
		}
		return
	}
	b.misses.Add(1)
	n := &frameNode{id: id}
	b.table[id] = n
	b.pushFront(n)
	if len(b.table) > b.frames {
		b.evict()
	}
}

// evict removes one page according to the policy.
func (b *BufferManager) evict() {
	switch b.policy {
	case Clock:
		// Sweep from the tail, granting one second chance per referenced
		// frame.
		if b.hand == nil {
			b.hand = b.tail
		}
		for {
			victim := b.hand
			if victim == nil {
				victim = b.tail
			}
			next := victim.prev // sweep from oldest toward newest
			if !victim.referenced {
				b.hand = next
				b.unlink(victim)
				delete(b.table, victim.id)
				if b.onEvict != nil {
					b.onEvict(victim.id)
				}
				return
			}
			victim.referenced = false
			if next == nil {
				next = b.tail
			}
			b.hand = next
		}
	default: // LRU and FIFO both evict the tail (least recent / oldest)
		evict := b.tail
		b.unlink(evict)
		delete(b.table, evict.id)
		if b.onEvict != nil {
			b.onEvict(evict.id)
		}
	}
}

// Hits returns the number of buffered accesses.
func (b *BufferManager) Hits() int64 { return b.hits.Load() }

// Misses returns the number of accesses that went to disk — the paper's
// page-access count.
func (b *BufferManager) Misses() int64 { return b.misses.Load() }

// Accesses returns the total number of page touches.
func (b *BufferManager) Accesses() int64 { return b.hits.Load() + b.misses.Load() }

// ResetCounters zeroes the statistics without dropping buffer contents,
// so a measurement can exclude index construction.
func (b *BufferManager) ResetCounters() {
	b.hits.Store(0)
	b.misses.Store(0)
}

// Clear drops all buffered pages and zeroes the statistics.
func (b *BufferManager) Clear() {
	b.table = make(map[PageID]*frameNode, b.frames)
	b.head, b.tail, b.hand = nil, nil, nil
	b.hits.Store(0)
	b.misses.Store(0)
}

// FrameState is the persisted state of one buffered page.
type FrameState struct {
	ID         PageID
	Referenced bool // Clock second-chance bit
}

// BufferState is a snapshot of the buffer contents: the resident pages in
// recency order plus the clock hand. It captures everything the
// replacement policies consult, so restoring it resumes the exact
// eviction behavior; the hit/miss counters are not part of the snapshot.
type BufferState struct {
	// Frames lists the resident pages from oldest (the eviction end) to
	// newest.
	Frames []FrameState
	// Hand is the index into Frames of the clock hand, or -1 when the
	// hand is unset (also for the non-Clock policies).
	Hand int
}

// State snapshots the buffer contents (see BufferState).
func (b *BufferManager) State() BufferState {
	st := BufferState{Hand: -1}
	for n := b.tail; n != nil; n = n.prev {
		if n == b.hand {
			st.Hand = len(st.Frames)
		}
		st.Frames = append(st.Frames, FrameState{ID: n.id, Referenced: n.referenced})
	}
	return st
}

// Restore replaces the buffer contents with a snapshot taken by State.
// The counters are left untouched; frames beyond the buffer capacity are
// ignored (newest kept).
func (b *BufferManager) Restore(st BufferState) {
	hits, misses := b.hits.Load(), b.misses.Load()
	b.Clear()
	b.hits.Store(hits)
	b.misses.Store(misses)
	drop := len(st.Frames) - b.frames // oldest frames beyond capacity
	for i, f := range st.Frames {
		if i < drop {
			continue
		}
		if _, dup := b.table[f.ID]; dup {
			continue
		}
		n := &frameNode{id: f.ID, referenced: f.Referenced}
		b.table[f.ID] = n
		b.pushFront(n) // oldest first: each push becomes the new head
		if i == st.Hand {
			b.hand = n
		}
	}
}

func (b *BufferManager) pushFront(n *frameNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *BufferManager) unlink(n *frameNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *BufferManager) moveToFront(n *frameNode) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}
