package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileStore is the disk-backed PageStore: a file of fixed-size page slots
// behind the same replacement-policy buffer as the counting simulator. A
// buffered page is served from the in-memory frame cache (a hit); an
// unbuffered page is read from disk and faulted into the cache (a miss).
// Because the residency decisions are made by the identical BufferManager
// logic, the hit/miss accounting is byte-for-byte equal to the counting
// store's on the same access sequence and frame count.
//
// The store is safe for concurrent use: a mutex guards the frame cache
// and the replacement/accounting state, and the session read path
// (ReadShared) deduplicates concurrent disk reads of the same page
// through a single-flight table. The accounting path (Access/ReadPage)
// remains the shared-mode Accessor of one query at a time — the paper's
// sequential metric is only meaningful for a serial access sequence —
// while any number of per-query Sessions may read concurrently.
//
// File layout (little endian): a 16-byte header (magic 'SJPS', version,
// slot size), then page i as the slotBytes-sized slot at offset
// 16 + i·slotBytes. Reading a page beyond the end of the file yields a
// zero-filled page — the store grows implicitly, like a fresh database
// file, so a dynamically built tree can run on a FileStore before any
// page has been written.
type FileStore struct {
	f    *os.File
	slot int

	// mu is a read-write lock: the shared-mode accounting path and every
	// cache mutation hold it exclusively, while the session read path
	// (ReadShared) serves resident pages under the read lock — concurrent
	// queries reading buffered pages never serialize on each other. The
	// hit/miss counters live in the BufferManager's atomics, so the
	// statistics accessors take no lock at all.
	mu       sync.RWMutex
	pages    int // page slots physically present in the file
	bm       *BufferManager
	cache    map[PageID][]byte
	inflight map[PageID]*pageLoad // single-flight table of ReadShared
	err      error                // first I/O error seen by Access (sticky)
}

// pageLoad is one in-flight disk read shared by concurrent ReadShared
// callers of the same page.
type pageLoad struct {
	done chan struct{}
	data []byte
	err  error
}

// FileStore implements PageStore and serves bytes to per-query Sessions.
var (
	_ PageStore  = (*FileStore)(nil)
	_ ByteSource = (*FileStore)(nil)
)

const (
	fileMagic       = 0x53_4A_50_53 // "SJPS"
	fileVersion     = 1
	fileHeaderBytes = 16
)

// ErrBadStore reports a malformed page-store file.
var ErrBadStore = errors.New("storage: corrupt page-store file")

// maxSlotBytes bounds the slot size accepted from a file header, so a
// corrupt header cannot make every ReadPage allocate gigabytes.
const maxSlotBytes = 1 << 26 // 64 MiB, far above any real page slot

// CreateFileStore creates (or truncates) a paged file with the given slot
// size and a buffer of bufferFrames frames.
func CreateFileStore(path string, slotBytes, bufferFrames int, policy Policy) (*FileStore, error) {
	if slotBytes <= 0 || slotBytes > maxSlotBytes {
		return nil, fmt.Errorf("storage: slot size %d outside (0, %d]", slotBytes, maxSlotBytes)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var hdr [fileHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(slotBytes))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	return newFileStore(f, slotBytes, 0, bufferFrames, policy), nil
}

// OpenFileStore opens an existing paged file; the slot size comes from
// the file header.
func OpenFileStore(path string, bufferFrames int, policy Policy) (*FileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [fileHeaderBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	version := binary.LittleEndian.Uint32(hdr[4:])
	slot := int(binary.LittleEndian.Uint32(hdr[8:]))
	if magic != fileMagic || version != fileVersion || slot <= 0 || slot > maxSlotBytes {
		f.Close()
		return nil, fmt.Errorf("%w: bad header (magic %#x version %d slot %d)", ErrBadStore, magic, version, slot)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pages := int((info.Size() - fileHeaderBytes) / int64(slot))
	if pages < 0 {
		pages = 0
	}
	return newFileStore(f, slot, pages, bufferFrames, policy), nil
}

func newFileStore(f *os.File, slot, pages, bufferFrames int, policy Policy) *FileStore {
	if bufferFrames < 1 {
		bufferFrames = 1
	}
	s := &FileStore{
		f:        f,
		slot:     slot,
		pages:    pages,
		bm:       NewBufferFrames(bufferFrames, policy),
		cache:    make(map[PageID][]byte, bufferFrames),
		inflight: make(map[PageID]*pageLoad),
	}
	s.bm.onEvict = func(id PageID) { delete(s.cache, id) }
	return s
}

// NewBufferFrames sizes a counting buffer by frame count directly, for
// stores whose physical slot size differs from the modelled page size.
func NewBufferFrames(frames int, policy Policy) *BufferManager {
	if frames < 1 {
		frames = 1
	}
	return &BufferManager{
		frames: frames,
		policy: policy,
		table:  make(map[PageID]*frameNode, frames),
	}
}

// SlotBytes returns the physical page slot size.
func (s *FileStore) SlotBytes() int { return s.slot }

// Pages returns the number of page slots present in the file.
func (s *FileStore) Pages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages
}

// Err returns the first I/O error Access swallowed, if any. ReadPage and
// the write path report their errors directly.
func (s *FileStore) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.err
}

// Access touches a page through the buffer; a miss reads it from disk.
// I/O errors are sticky and reported by Err (the PageStore access path
// has no error channel — the counting simulator cannot fail).
func (s *FileStore) Access(id PageID) {
	if _, err := s.ReadPage(id); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

// ReadPage returns the slotBytes-sized content of a page, through the
// buffer: a resident page is a hit, a non-resident page is a miss that
// reads the slot from disk and faults it into the frame cache. The
// returned slice is the cached frame — the caller must not modify it.
//
// ReadPage is the shared-mode accounting path: it mutates the buffer, so
// while it is internally synchronized, interleaving it across queries
// scrambles the modelled metric. Concurrent queries read through
// Sessions (ReadShared) instead.
func (s *FileStore) ReadPage(id PageID) ([]byte, error) {
	if id < 0 {
		return nil, fmt.Errorf("storage: read of invalid page %d", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, resident := s.bm.table[id]; resident {
		s.bm.Access(id) // hit
		if data := s.cache[id]; data != nil {
			return data, nil
		}
		// Resident without bytes: the frame came from Restore. The page
		// is modelled as buffered, so the lazy fill is not a miss.
		data, err := s.readDisk(id, s.pages)
		if err != nil {
			return nil, err
		}
		s.cache[id] = data
		return data, nil
	}
	s.bm.Access(id) // miss; the eviction hook prunes the cache
	data, err := s.readDisk(id, s.pages)
	if err != nil {
		return nil, err
	}
	if _, resident := s.bm.table[id]; resident {
		s.cache[id] = data
	}
	return data, nil
}

// ReadShared returns the bytes of a page without touching the store's
// accounting or replacement state — the concurrency-safe read path of
// per-query Sessions (it implements ByteSource). A page resident in the
// shared frame cache is served from memory; anything else is read from
// disk, with concurrent reads of the same page collapsed into one I/O
// through the single-flight table. The bytes are not admitted to the
// cache: residency stays exactly as shared-mode accounting (or a
// restored snapshot) left it, so the store's State() — the seed of every
// new Session — is stable while only sessions are active.
func (s *FileStore) ReadShared(id PageID) ([]byte, error) {
	if id < 0 {
		return nil, fmt.Errorf("storage: read of invalid page %d", id)
	}
	// Fast path: a resident page needs only the read lock, so concurrent
	// sessions reading buffered pages proceed in parallel.
	s.mu.RLock()
	data := s.cache[id]
	s.mu.RUnlock()
	if data != nil {
		return data, nil
	}
	s.mu.Lock()
	if data := s.cache[id]; data != nil { // re-check: raced with a fill
		s.mu.Unlock()
		return data, nil
	}
	if fl, ok := s.inflight[id]; ok {
		s.mu.Unlock()
		<-fl.done
		return fl.data, fl.err
	}
	fl := &pageLoad{done: make(chan struct{})}
	s.inflight[id] = fl
	pages := s.pages
	s.mu.Unlock()

	fl.data, fl.err = s.readDisk(id, pages)
	s.mu.Lock()
	delete(s.inflight, id)
	s.mu.Unlock()
	close(fl.done)
	return fl.data, fl.err
}

// readDisk reads one slot from the file; slots past the end of the file
// (pages is the caller's snapshot of the slot count) are zero-filled
// (implicitly allocated). os.File.ReadAt is safe for concurrent use, so
// readDisk may run outside the mutex.
func (s *FileStore) readDisk(id PageID, pages int) ([]byte, error) {
	data := make([]byte, s.slot)
	if int(id) >= pages {
		return data, nil
	}
	if _, err := s.f.ReadAt(data, fileHeaderBytes+int64(id)*int64(s.slot)); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// AppendPage writes data (at most slotBytes, zero-padded) as the next
// page and returns its ID.
func (s *FileStore) AppendPage(data []byte) (PageID, error) {
	s.mu.Lock()
	id := PageID(s.pages)
	err := s.writePageLocked(id, data)
	s.mu.Unlock()
	if err != nil {
		return InvalidPage, err
	}
	return id, nil
}

// WritePage writes data (at most slotBytes, zero-padded) to the page
// slot, extending the file as needed. Writes bypass the access
// accounting; a resident page's cached bytes are updated (write-through).
func (s *FileStore) WritePage(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writePageLocked(id, data)
}

func (s *FileStore) writePageLocked(id PageID, data []byte) error {
	if id < 0 {
		return fmt.Errorf("storage: write to invalid page %d", id)
	}
	if len(data) > s.slot {
		return fmt.Errorf("storage: page of %d bytes exceeds the %d-byte slot", len(data), s.slot)
	}
	buf := make([]byte, s.slot)
	copy(buf, data)
	if _, err := s.f.WriteAt(buf, fileHeaderBytes+int64(id)*int64(s.slot)); err != nil {
		return err
	}
	if int(id) >= s.pages {
		s.pages = int(id) + 1
	}
	if _, resident := s.bm.table[id]; resident {
		s.cache[id] = buf
	}
	return nil
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close syncs and closes the backing file.
func (s *FileStore) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Hits returns the number of buffered accesses. The counters are
// atomics, so the statistics accessors never contend with readers.
func (s *FileStore) Hits() int64 { return s.bm.Hits() }

// Misses returns the number of accesses that read from disk.
func (s *FileStore) Misses() int64 { return s.bm.Misses() }

// Accesses returns the total number of page touches.
func (s *FileStore) Accesses() int64 { return s.bm.Accesses() }

// ResetCounters zeroes the statistics without dropping buffer contents.
func (s *FileStore) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bm.ResetCounters()
}

// Clear drops all buffered pages (and their cached bytes) and zeroes the
// statistics.
func (s *FileStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bm.Clear()
	s.cache = make(map[PageID][]byte, s.bm.Frames())
}

// Frames returns the buffer capacity in pages (immutable, no lock
// needed).
func (s *FileStore) Frames() int { return s.bm.Frames() }

// Policy returns the replacement policy (immutable, no lock needed).
func (s *FileStore) Policy() Policy { return s.bm.Policy() }

// State snapshots the buffer contents (page residency, not bytes).
func (s *FileStore) State() BufferState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bm.State()
}

// Restore replaces the buffer contents with a snapshot; the restored
// frames fault their bytes in lazily, without counting misses (the pages
// are modelled as already buffered).
func (s *FileStore) Restore(st BufferState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bm.Restore(st)
	for id := range s.cache {
		if _, resident := s.bm.table[id]; !resident {
			delete(s.cache, id)
		}
	}
}
