package svg

import (
	"encoding/xml"
	"strings"
	"testing"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
)

func testPoly() *geom.Polygon {
	return geom.NewPolygon(
		[]geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.2}, {X: 0.8, Y: 0.9}, {X: 0.2, Y: 0.8}},
		[]geom.Point{{X: 0.4, Y: 0.4}, {X: 0.6, Y: 0.4}, {X: 0.5, Y: 0.6}},
	)
}

func TestCanvasProducesWellFormedXML(t *testing.T) {
	p := testPoly()
	c := NewCanvas(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 400)
	c.Polygon(p, DefaultStyle())
	c.Rect(p.Bounds(), Style{Stroke: "#1f77b4"})
	c.Circle(approx.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 0.2}, Style{Stroke: "#2ca02c"})
	c.Trapezoids(decomp.Trapezoidize(p), Style{Stroke: "#999999", StrokeWidth: 0.5})
	s := approx.Compute(p, approx.AllOptions())
	c.Approximations(s, []approx.Kind{approx.MBR, approx.C5, approx.MBC, approx.MER, approx.MEC})

	out := c.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("output must start with <svg")
	}
	// The document must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed XML: %v", err)
		}
	}
	// Every element family must be present.
	for _, want := range []string{"<path", "<circle", "evenodd"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestCanvasCoordinateTransform(t *testing.T) {
	c := NewCanvas(geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, 100)
	x, y := c.tx(geom.Point{X: 0, Y: 0})
	if x != 0 || y != 100 {
		t.Errorf("origin maps to (%v,%v), want (0,100) — y flipped", x, y)
	}
	x, y = c.tx(geom.Point{X: 2, Y: 2})
	if x != 100 || y != 0 {
		t.Errorf("top-right maps to (%v,%v), want (100,0)", x, y)
	}
	if NewCanvas(geom.Rect{}, 0).size != 800 {
		t.Error("zero size must default to 800")
	}
}
