// Package svg renders relations, approximations and decompositions as SVG
// documents — the visual counterpart of the paper's Figures 3, 7, 14 and
// 15, useful for inspecting generated data and approximation quality.
package svg

import (
	"fmt"
	"strings"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
)

// Canvas accumulates SVG elements over a world-coordinate viewport.
type Canvas struct {
	viewport geom.Rect
	size     int
	elems    []string
}

// NewCanvas creates a canvas rendering the world-coordinate viewport onto
// a square image of the given pixel size.
func NewCanvas(viewport geom.Rect, sizePx int) *Canvas {
	if sizePx <= 0 {
		sizePx = 800
	}
	return &Canvas{viewport: viewport, size: sizePx}
}

// tx transforms world coordinates to pixel coordinates (y flipped).
func (c *Canvas) tx(p geom.Point) (float64, float64) {
	w := c.viewport.Width()
	h := c.viewport.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	x := (p.X - c.viewport.MinX) / w * float64(c.size)
	y := float64(c.size) - (p.Y-c.viewport.MinY)/h*float64(c.size)
	return x, y
}

// Style is a minimal subset of SVG presentation attributes.
type Style struct {
	Fill        string
	Stroke      string
	StrokeWidth float64
	Opacity     float64
}

// DefaultStyle renders thin black outlines with translucent gray fill.
func DefaultStyle() Style {
	return Style{Fill: "#d0d4cc", Stroke: "#333333", StrokeWidth: 1, Opacity: 0.9}
}

func (s Style) attrs() string {
	fill := s.Fill
	if fill == "" {
		fill = "none"
	}
	stroke := s.Stroke
	if stroke == "" {
		stroke = "none"
	}
	sw := s.StrokeWidth
	if sw == 0 {
		sw = 1
	}
	op := s.Opacity
	if op == 0 {
		op = 1
	}
	return fmt.Sprintf(`fill=%q stroke=%q stroke-width="%.2f" opacity="%.2f"`, fill, stroke, sw, op)
}

func (c *Canvas) path(rings []geom.Ring, st Style) {
	var b strings.Builder
	for _, r := range rings {
		for i, p := range r {
			x, y := c.tx(p)
			if i == 0 {
				fmt.Fprintf(&b, "M%.2f %.2f", x, y)
			} else {
				fmt.Fprintf(&b, "L%.2f %.2f", x, y)
			}
		}
		b.WriteString("Z")
	}
	c.elems = append(c.elems,
		fmt.Sprintf(`<path d="%s" fill-rule="evenodd" %s/>`, b.String(), st.attrs()))
}

// Polygon draws a polygon with its holes (even–odd fill).
func (c *Canvas) Polygon(p *geom.Polygon, st Style) {
	rings := append([]geom.Ring{p.Outer}, p.Holes...)
	c.path(rings, st)
}

// Ring draws a single closed ring.
func (c *Canvas) Ring(r geom.Ring, st Style) { c.path([]geom.Ring{r}, st) }

// Rect draws an axis-parallel rectangle.
func (c *Canvas) Rect(r geom.Rect, st Style) {
	corners := r.Corners()
	c.path([]geom.Ring{corners[:]}, st)
}

// Circle draws a circle.
func (c *Canvas) Circle(circle approx.Circle, st Style) {
	x, y := c.tx(circle.C)
	rx := circle.R / c.viewport.Width() * float64(c.size)
	c.elems = append(c.elems,
		fmt.Sprintf(`<circle cx="%.2f" cy="%.2f" r="%.2f" %s/>`, x, y, rx, st.attrs()))
}

// Trapezoids draws a decomposition.
func (c *Canvas) Trapezoids(traps []decomp.Trapezoid, st Style) {
	for _, t := range traps {
		c.Ring(t.Ring(), st)
	}
}

// Approximations draws the computed approximations of a set: conservative
// outlines in blue tones, progressive in green.
func (c *Canvas) Approximations(s *approx.Set, kinds []approx.Kind) {
	colors := map[approx.Kind]string{
		approx.MBR:  "#1f77b4",
		approx.RMBR: "#5b9bd5",
		approx.CH:   "#103a5e",
		approx.C4:   "#4169aa",
		approx.C5:   "#2e5a88",
		approx.MBC:  "#7fb2e5",
		approx.MBE:  "#9467bd",
		approx.MEC:  "#2ca02c",
		approx.MER:  "#62bb47",
	}
	for _, k := range kinds {
		if !s.Has(k) {
			continue
		}
		st := Style{Stroke: colors[k], StrokeWidth: 1.5}
		c.Ring(s.Outline(k), st)
	}
}

// String renders the document.
func (c *Canvas) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		c.size, c.size, c.size, c.size)
	b.WriteString("\n")
	for _, e := range c.elems {
		b.WriteString(e)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}
