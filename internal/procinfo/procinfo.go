// Package procinfo reads this process's resource figures from /proc —
// the RSS and CPU identification that measurement reports (cmd/bench,
// cmd/loadtest) and the serving layer's /stats endpoint attach to their
// output. Everything degrades to zero values where /proc is missing
// (non-Linux), so callers need no build tags.
package procinfo

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSS returns the peak resident set size of this process (Linux
// VmHWM, in bytes), or 0 where /proc is unavailable.
func PeakRSS() int64 { return statusBytes("VmHWM:") }

// CurrentRSS returns the current resident set size of this process
// (Linux VmRSS, in bytes), or 0 where /proc is unavailable.
func CurrentRSS() int64 { return statusBytes("VmRSS:") }

func statusBytes(field string) int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, field) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// CPUModel returns the CPU model name (Linux /proc/cpuinfo), or "".
func CPUModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}
