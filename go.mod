module spatialjoin

go 1.24
