// Command experiments regenerates every table and figure of the paper's
// evaluation (Brinkhoff, Kriegel, Schneider, Seeger: Multi-Step Processing
// of Spatial Joins, SIGMOD 1994) on the synthetic cartographic analogs.
//
// Usage:
//
//	experiments [-big N] [-only table2,figure18] [-skip-big]
//
// -big sets the size of the section 3.4/3.5/5 relations (the paper uses
// 130,000 objects; the default 20,000 preserves every reported shape and
// runs in minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spatialjoin/internal/experiments"
)

func main() {
	bigN := flag.Int("big", 20000, "objects per big relation (paper: 130000)")
	only := flag.String("only", "", "comma-separated experiment names to run (default all)")
	skipBig := flag.Bool("skip-big", false, "skip the big-relation experiments (figures 10, 11, 18)")
	flag.Parse()

	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(strings.ToLower(name)); name != "" {
			selected[name] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	env := experiments.NewEnv()
	big := experiments.DefaultBigParams()
	big.N = *bigN

	type exp struct {
		name string
		big  bool
		run  func() *experiments.Table
	}
	exps := []exp{
		{"figure2", false, func() *experiments.Table { return experiments.Figure2(env) }},
		{"table1", false, func() *experiments.Table { return experiments.Table1(env) }},
		{"table2", false, func() *experiments.Table { return experiments.Table2(env) }},
		{"table3", false, func() *experiments.Table { return experiments.Table3(env) }},
		{"table4", false, func() *experiments.Table { return experiments.Table4(env) }},
		{"table5", false, func() *experiments.Table { return experiments.Table5(env) }},
		{"figure4", false, func() *experiments.Table { return experiments.Figure4(env) }},
		{"figure5", false, func() *experiments.Table { return experiments.Figure5(env) }},
		{"figure8", false, func() *experiments.Table { return experiments.Figure8(env) }},
		{"figure12", false, func() *experiments.Table { return experiments.Figure12(env) }},
		{"table6", false, func() *experiments.Table { return experiments.Table6() }},
		{"table7", false, func() *experiments.Table { t, _ := experiments.Table7(env); return t }},
		{"figure16", false, func() *experiments.Table { t, _ := experiments.Figure16(env); return t }},
		{"figure17", false, func() *experiments.Table { t, _ := experiments.Figure17(env); return t }},
		{"figure10", true, func() *experiments.Table { return experiments.Figure10(big) }},
		{"figure11", true, func() *experiments.Table { t, _ := experiments.Figure11(big); return t }},
		{"figure18", true, func() *experiments.Table { t, _ := experiments.Figure18(big); return t }},
		// Ablations beyond the paper's own figures (DESIGN.md §8).
		{"ablation-step1", false, func() *experiments.Table { return experiments.AblationStep1(env) }},
		{"ablation-decomp", false, func() *experiments.Table { return experiments.AblationDecomposition(env) }},
		{"ablation-trcap", false, func() *experiments.Table { return experiments.AblationTRCapacityWide(env) }},
		{"ablation-build", true, func() *experiments.Table { return experiments.AblationBuildStrategy(big) }},
		{"ablation-filters", false, func() *experiments.Table { return experiments.AblationFilterCombos(env) }},
		{"figure18-wall", true, func() *experiments.Table { return experiments.Figure18Wall(big) }},
		{"ablation-parallel", true, func() *experiments.Table { return experiments.AblationParallelism(big) }},
		{"ablation-buffer", true, func() *experiments.Table { return experiments.AblationBufferPolicy(big) }},
		{"ablation-sams", true, func() *experiments.Table { return experiments.AblationSAMs(big) }},
	}

	start := time.Now()
	ran := 0
	for _, e := range exps {
		if !want(e.name) {
			continue
		}
		if e.big && *skipBig {
			continue
		}
		t0 := time.Now()
		tab := e.run()
		fmt.Println(tab)
		fmt.Printf("[%s in %.1fs]\n\n", e.name, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected; known names:")
		for _, e := range exps {
			fmt.Fprintln(os.Stderr, "  "+e.name)
		}
		os.Exit(2)
	}
	fmt.Printf("total: %d experiments in %.1fs (big relations: %d objects)\n",
		ran, time.Since(start).Seconds(), big.N)
}
