// Command datagen emits a generated cartographic relation as
// tab-separated WKT-like polygons on stdout, for inspection or use by
// external tools.
//
// Usage:
//
//	datagen [-n 810] [-verts 84] [-holes 0.06] [-seed 9401] [-stats]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

func main() {
	n := flag.Int("n", 810, "number of polygons")
	verts := flag.Int("verts", 84, "average vertices per polygon")
	holes := flag.Float64("holes", 0.06, "fraction of polygons with a hole")
	seed := flag.Int64("seed", 9401, "generation seed")
	statsOnly := flag.Bool("stats", false, "print relation statistics instead of geometry")
	binOut := flag.String("bin", "", "write the relation in binary form to this file instead of WKT on stdout")
	flag.Parse()

	rel := data.GenerateMap(data.MapConfig{
		Cells: *n, TargetVerts: *verts, HoleFraction: *holes, Seed: *seed,
	})
	if *statsOnly {
		st := data.Stats(rel)
		fmt.Printf("objects=%d m_avg=%.1f m_min=%d m_max=%d with_holes=%d\n",
			st.Objects, st.Avg, st.Min, st.Max, st.WithHoles)
		return
	}
	if *binOut != "" {
		f, err := os.Create(*binOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := data.WriteRelation(f, rel); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, p := range rel {
		fmt.Fprintf(w, "%d\t%s\n", i, wkt(p))
	}
}

// wkt renders a polygon in WKT syntax: POLYGON ((outer), (hole), ...).
func wkt(p *geom.Polygon) string {
	var b strings.Builder
	b.WriteString("POLYGON (")
	writeRing := func(r geom.Ring) {
		b.WriteByte('(')
		for i, pt := range r {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.6f %.6f", pt.X, pt.Y)
		}
		// Close the ring as WKT requires.
		fmt.Fprintf(&b, ", %.6f %.6f)", r[0].X, r[0].Y)
	}
	writeRing(p.Outer)
	for _, h := range p.Holes {
		b.WriteString(", ")
		writeRing(h)
	}
	b.WriteByte(')')
	return b.String()
}
