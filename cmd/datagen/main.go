// Command datagen emits a generated cartographic relation: as
// tab-separated WKT-like polygons on stdout (the default, for inspection
// or external tools), as the compact binary polygon format (-bin), or as
// a fully preprocessed relation store (-store) that cmd/spatialjoin and
// OpenRelation reopen instantly — build once, serve many.
//
// Usage:
//
//	datagen [-n 810] [-verts 84] [-holes 0.06] [-seed 9401] [-stats]
//	        [-bin out.sjr]
//	        [-store out.store] [-shards N] [-strategy ""|A|B|B2] [-name NAME]
//	        [-engine trstar] [-conservative 5C] [-progressive MER]
//	        [-no-filter] [-page 4096] [-policy lru]
//	        [-stream] [-sf F] [-side R|S]
//
// -stream switches to the bounded-memory streaming generator
// (data.StreamMap): polygons are emitted one at a time and never
// materialized, so -n in the millions builds in constant memory. With
// -store the relation streams through a spill file into a sharded store
// directory (-shards, default 1) whose bytes are identical to the
// materialized shard.Build path; with -bin the binary relation streams
// straight to disk. -sf F builds one side of the scale-factor dataset
// pair of internal/loadgen instead — object count, extent and seeds
// derive from F, -side picks the R or S relation, and the store name
// defaults to the spec's (sf1-R style) so cmd/loadtest finds it.
//
// With -store, the configuration flags select the preprocessing
// (approximations, exact engine, page geometry, buffer policy) and are
// fingerprinted into the store; opening it later requires the same
// configuration. -shards N partitions the relation into N Z-order tiles
// and writes a sharded store directory (shard.Save layout) instead of a
// single file; cmd/spatialjoinserve opens either form. -strategy
// transforms the generated map into the paper's test-series counterpart
// before preprocessing: A is the shifted copy, and B/B2 are the two
// randomized placements cmd/spatialjoin joins as R and S under its
// -strategy B.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/loadgen"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
	"spatialjoin/internal/storage"
)

func main() {
	n := flag.Int("n", 810, "number of polygons")
	verts := flag.Int("verts", 84, "average vertices per polygon")
	holes := flag.Float64("holes", 0.06, "fraction of polygons with a hole")
	seed := flag.Int64("seed", 9401, "generation seed")
	statsOnly := flag.Bool("stats", false, "print relation statistics instead of geometry")
	binOut := flag.String("bin", "", "write the relation in binary form to this file instead of WKT on stdout")
	storeOut := flag.String("store", "", "preprocess the relation and write it as a relation store to this file")
	strategy := flag.String("strategy", "", "with -store: transform the map first: A (shifted copy), B (random placement, R side) or B2 (random placement, S side)")
	name := flag.String("name", "", "with -store: relation name (default: the file name)")
	engine := flag.String("engine", "trstar", "with -store: exact engine: trstar, planesweep, quadratic")
	conservative := flag.String("conservative", "5C", "with -store: conservative approximation: 5C, 4C, RMBR, CH, MBC, MBE")
	progressive := flag.String("progressive", "MER", "with -store: progressive approximation: MER, MEC")
	noFilter := flag.Bool("no-filter", false, "with -store: disable the geometric filter (step 2)")
	pageSize := flag.Int("page", 4096, "with -store: R*-tree page size in bytes")
	policy := flag.String("policy", "lru", "with -store: buffer replacement policy: lru, fifo, clock")
	shards := flag.Int("shards", 0, "with -store: partition into this many Z-order tiles and write a sharded store directory")
	sf := flag.Float64("sf", 0, "build a scale-factor dataset side instead of -n/-verts/-holes/-seed (implies -stream; see -side)")
	side := flag.String("side", "R", "with -sf: which relation of the dataset pair to build: R or S")
	stream := flag.Bool("stream", false, "generate with the bounded-memory streaming generator (for very large -n; a different — equally valid — polygon sequence than the default generator)")
	flag.Parse()

	mc := data.MapConfig{Cells: *n, TargetVerts: *verts, HoleFraction: *holes, Seed: *seed}
	sfName := ""
	if *sf > 0 {
		spec, err := loadgen.For(*sf)
		if err != nil {
			fatal(err)
		}
		if mc, err = spec.MapConfig(strings.ToUpper(*side)); err != nil {
			fatal(err)
		}
		sfName = spec.RelationName(strings.ToUpper(*side))
		*stream = true
		fmt.Fprintf(os.Stderr, "datagen: SF=%g side %s: %d objects over [0, %.3f]²\n",
			*sf, strings.ToUpper(*side), mc.Cells, mc.Extent)
	}
	if *stream {
		streamMain(mc, sfName, *statsOnly, *binOut, *storeOut, *shards, *strategy, *name,
			*engine, *conservative, *progressive, *noFilter, *pageSize, *policy)
		return
	}

	rel := data.GenerateMap(mc)
	if *statsOnly {
		st := data.Stats(rel)
		fmt.Printf("objects=%d m_avg=%.1f m_min=%d m_max=%d with_holes=%d\n",
			st.Objects, st.Avg, st.Min, st.Max, st.WithHoles)
		return
	}
	if *binOut != "" {
		f, err := os.Create(*binOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := data.WriteRelation(f, rel); err != nil {
			fatal(err)
		}
		return
	}
	if *storeOut != "" {
		cfg := parseCfg(*engine, *conservative, *progressive, *noFilter, *pageSize, *policy)
		// The seed offsets mirror cmd/spatialjoin's test-series pairs:
		// its strategy B joins StrategyB(base, seed+1) with
		// StrategyB(base, seed+2), so B emits the R side and B2 the S
		// side — the prebuilt stores reproduce the generate path
		// exactly for both strategies.
		switch strings.ToUpper(*strategy) {
		case "":
		case "A":
			rel = data.StrategyA(rel, 0.45)
		case "B":
			rel = data.StrategyB(rel, *seed+1)
		case "B2":
			rel = data.StrategyB(rel, *seed+2)
		default:
			fatal(fmt.Errorf("unknown strategy %q", *strategy))
		}
		relName := *name
		if relName == "" {
			relName = *storeOut
		}
		if *shards > 0 {
			sh := shard.Build(relName, rel, *shards, cfg)
			if err := shard.Save(*storeOut, sh); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s: %d objects preprocessed into %d tile(s) (engine %s, filter %s+%s, page %d, policy %s)\n",
				*storeOut, sh.Objects(), sh.Shards(), cfg.Engine, cfg.Filter.Conservative, cfg.Filter.Progressive,
				cfg.PageSize, cfg.BufferPolicy)
			return
		}
		r := multistep.NewRelation(relName, rel, cfg)
		if err := multistep.SaveRelationFile(*storeOut, r, cfg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d objects preprocessed (engine %s, filter %s+%s, page %d, policy %s)\n",
			*storeOut, len(r.Objects), cfg.Engine, cfg.Filter.Conservative, cfg.Filter.Progressive,
			cfg.PageSize, cfg.BufferPolicy)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, p := range rel {
		fmt.Fprintf(w, "%d\t%s\n", i, wkt(p))
	}
}

// parseCfg resolves the preprocessing flags into a configuration.
func parseCfg(engine, conservative, progressive string, noFilter bool, pageSize int, policy string) multistep.Config {
	cfg := multistep.DefaultConfig()
	cfg.PageSize = pageSize
	cfg.UseFilter = !noFilter
	var err error
	if cfg.Engine, err = multistep.ParseEngine(engine); err != nil {
		fatal(err)
	}
	if cfg.Filter.Conservative, err = approx.ParseKind(conservative); err != nil {
		fatal(err)
	}
	if cfg.Filter.Progressive, err = approx.ParseKind(progressive); err != nil {
		fatal(err)
	}
	if cfg.BufferPolicy, err = storage.ParsePolicy(policy); err != nil {
		fatal(err)
	}
	return cfg
}

// streamMain is the bounded-memory path (-stream, and always -sf): the
// relation is generated by data.StreamMap and never materialized.
// -store writes a sharded store directory via the spill-and-partition
// builder (a plain -store file would need the whole relation in memory
// to preprocess — use -shards, 1 is fine); -bin streams the binary
// relation; the default streams WKT rows.
func streamMain(mc data.MapConfig, sfName string, statsOnly bool, binOut, storeOut string,
	shards int, strategy, name, engine, conservative, progressive string,
	noFilter bool, pageSize int, policy string) {
	if strategy != "" {
		fatal(fmt.Errorf("-strategy is not available with -stream/-sf: the test-series transforms need the materialized map"))
	}
	switch {
	case statsOnly:
		var count, withHoles, vmin, vmax, vsum int
		_, err := data.StreamMap(mc, func(_ int32, p *geom.Polygon) error {
			v := p.NumVertices()
			if count == 0 || v < vmin {
				vmin = v
			}
			if v > vmax {
				vmax = v
			}
			vsum += v
			if len(p.Holes) > 0 {
				withHoles++
			}
			count++
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("objects=%d m_avg=%.1f m_min=%d m_max=%d with_holes=%d\n",
			count, float64(vsum)/float64(max(count, 1)), vmin, vmax, withHoles)
	case binOut != "":
		f, err := os.Create(binOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rw, err := data.NewRelationWriter(f, mc.Cells)
		if err != nil {
			fatal(err)
		}
		if _, err := data.StreamMap(mc, func(_ int32, p *geom.Polygon) error { return rw.Append(p) }); err != nil {
			fatal(err)
		}
		if err := rw.Close(); err != nil {
			fatal(err)
		}
	case storeOut != "":
		cfg := parseCfg(engine, conservative, progressive, noFilter, pageSize, policy)
		relName := name
		if relName == "" {
			relName = sfName
		}
		if relName == "" {
			relName = storeOut
		}
		if shards < 1 {
			shards = 1
		}
		bs, err := loadgen.BuildStore(storeOut, relName, mc, shards, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: relation %q, %d objects streamed into %d tile(s) (%.1f MB spill, %d seams, %d quad fallbacks; engine %s, filter %s+%s, page %d, policy %s)\n",
			storeOut, relName, bs.Objects, bs.Tiles, float64(bs.SpillBytes)/(1<<20), bs.Seams, bs.QuadFallbacks,
			cfg.Engine, cfg.Filter.Conservative, cfg.Filter.Progressive, cfg.PageSize, cfg.BufferPolicy)
	default:
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		if _, err := data.StreamMap(mc, func(id int32, p *geom.Polygon) error {
			_, err := fmt.Fprintf(w, "%d\t%s\n", id, wkt(p))
			return err
		}); err != nil {
			fatal(err)
		}
	}
}

// wkt renders a polygon in WKT syntax: POLYGON ((outer), (hole), ...).
func wkt(p *geom.Polygon) string {
	var b strings.Builder
	b.WriteString("POLYGON (")
	writeRing := func(r geom.Ring) {
		b.WriteByte('(')
		for i, pt := range r {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.6f %.6f", pt.X, pt.Y)
		}
		// Close the ring as WKT requires.
		fmt.Fprintf(&b, ", %.6f %.6f)", r[0].X, r[0].Y)
	}
	writeRing(p.Outer)
	for _, h := range p.Holes {
		b.WriteString(", ")
		writeRing(h)
	}
	b.WriteByte(')')
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
