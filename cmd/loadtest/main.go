// Command loadtest drives a live spatialjoinserve with the fixed
// scale-factor query flight of internal/loadgen and reports QPS and
// latency percentiles per query class — the service-level counterpart
// of cmd/bench's single-process measurements.
//
// Usage:
//
//	loadtest -base http://127.0.0.1:8080 -sf 1
//	         [-mode closed|open] [-rate 50] [-workers 4] [-mix uniform|zipf]
//	         [-warmup 2s] [-duration 10s] [-seed 1]
//	         [-label NAME] [-out BENCH_X.json]
//
// The server must already expose the two relations of the scale-factor
// dataset (sf1-R and sf1-S for -sf 1), built by cmd/datagen -sf:
//
//	datagen -sf 1 -side R -shards 8 -store sf1-R.store
//	datagen -sf 1 -side S -shards 8 -store sf1-S.store
//	spatialjoinserve -rel sf1-R=sf1-R.store -rel sf1-S=sf1-S.store &
//	loadtest -base http://127.0.0.1:8080 -sf 1 -workers 4 -duration 30s
//
// Before measuring, the harness calibrates: every query of the flight
// runs once and its response cardinality is recorded; during the run,
// every response is checked against it, so a load test is also a
// continuous correctness assertion. Closed mode runs -workers clients
// back to back; open mode fires requests at -rate per second and
// measures from the intended start time, so queueing delay at a
// saturated server shows up in the percentiles instead of silently
// thinning the arrival stream (no coordinated omission).
//
// The full report is printed as JSON. With -out, one row per query
// class (plus "all") is appended to the versioned measurement file
// under -label, in the same schema cmd/bench writes and validates
// (cmd/bench -check FILE).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spatialjoin/internal/benchfmt"
	"spatialjoin/internal/loadgen"
	"spatialjoin/internal/mqe"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "server base URL")
	sf := flag.Float64("sf", 0.01, "scale factor of the dataset the server exposes")
	mode := flag.String("mode", "closed", "load loop: closed (workers back to back) or open (fixed arrival rate)")
	rate := flag.Float64("rate", 0, "open mode: target arrival rate in requests/second")
	workers := flag.Int("workers", 4, "closed mode: concurrent clients")
	mix := flag.String("mix", "uniform", "query mix: uniform or zipf (skewed toward cheap queries)")
	warmup := flag.Duration("warmup", 2*time.Second, "unmeasured warm-up before the window")
	duration := flag.Duration("duration", 10*time.Second, "measured window")
	seed := flag.Int64("seed", 1, "request-sequence seed")
	label := flag.String("label", "", "run label for -out (default: derived from sf/mode/cache state)")
	out := flag.String("out", "", "append the run to this versioned measurement file (benchfmt schema)")
	flag.Parse()

	spec, err := loadgen.For(*sf)
	if err != nil {
		fatal(err)
	}
	flight := loadgen.NewFlight(spec)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &http.Client{}
	cacheOn, err := serverCacheOn(ctx, client, *base)
	if err != nil {
		fatal(fmt.Errorf("server not reachable at %s: %w", *base, err))
	}
	fmt.Fprintf(os.Stderr, "loadtest: calibrating %d queries against %s (SF=%g, cache %s)...\n",
		len(flight.Queries), *base, *sf, onOff(cacheOn))
	if err := flight.Calibrate(ctx, client, *base); err != nil {
		fatal(err)
	}
	for _, q := range flight.Queries {
		fmt.Fprintf(os.Stderr, "loadtest:   %-18s expect %d\n", q.Name, q.Expected)
	}

	rep, err := loadgen.Run(ctx, flight, loadgen.Options{
		BaseURL:  *base,
		Workers:  *workers,
		Mode:     *mode,
		RateQPS:  *rate,
		Mix:      *mix,
		Warmup:   *warmup,
		Duration: *duration,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if rep.Overall.Shed+rep.Overall.TimedOut+rep.Overall.Degraded > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: resilience outcomes: %d shed (429), %d timed out (504), %d degraded of %d requests\n",
			rep.Overall.Shed, rep.Overall.TimedOut, rep.Overall.Degraded, rep.Overall.Requests)
	}
	if rep.Overall.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %d/%d requests errored (samples: %v)\n",
			rep.Overall.Errors, rep.Overall.Requests, rep.ErrorSamples)
	}

	if *out != "" {
		runLabel := *label
		if runLabel == "" {
			runLabel = fmt.Sprintf("load-sf%g-%s-cache-%s", *sf, rep.Mode, onOff(cacheOn))
		}
		if err := benchfmt.WriteRun(*out, toRun(runLabel, spec, rep, cacheOn)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadtest: wrote run %q to %s\n", runLabel, *out)
	}
	if rep.Overall.Errors > 0 {
		os.Exit(1)
	}
}

// toRun converts a load report into a measurement-file run: one result
// row per query class plus the "all" aggregate.
func toRun(label string, spec loadgen.Spec, rep *loadgen.Report, cacheOn bool) benchfmt.Run {
	run := benchfmt.Run{
		Label:      label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        benchfmt.CPUModel(),
		Workload: benchfmt.Workload{
			Objects:     spec.Objects,
			Verts:       spec.Verts,
			Seed:        spec.SeedR,
			ScaleFactor: spec.SF,
			Mode:        rep.Mode,
			Workers:     rep.Workers,
			DurationSec: rep.DurationSec,
		},
		PeakRSSBytes: benchfmt.PeakRSS(),
	}
	add := func(c loadgen.ClassReport) {
		run.Results = append(run.Results, benchfmt.Result{
			Name:           label + "/" + c.Class,
			Class:          c.Class,
			Requests:       c.Requests,
			Errors:         c.Errors,
			Shed:           c.Shed,
			TimedOut:       c.TimedOut,
			Degraded:       c.Degraded,
			QPS:            c.QPS,
			P50Ms:          c.Latency.P50Ms,
			P95Ms:          c.Latency.P95Ms,
			P99Ms:          c.Latency.P99Ms,
			MaxMs:          c.Latency.MaxMs,
			CacheOn:        cacheOn,
			ServerRSSBytes: rep.ServerRSSBytes,
		})
	}
	add(rep.Overall)
	for _, c := range rep.Classes {
		add(c)
	}
	return run
}

// serverCacheOn probes GET /stats for whether the server's result cache
// has a budget.
func serverCacheOn(ctx context.Context, client *http.Client, base string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var v struct {
		Cache mqe.CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return false, err
	}
	return v.Cache.MaxBytes > 0, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadtest:", err)
	os.Exit(1)
}
