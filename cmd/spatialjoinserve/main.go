// Command spatialjoinserve serves spatial queries over HTTP from a
// catalog of prebuilt relation stores — the "build once, serve many"
// deployment of the multi-step processor. Every request runs on its own
// per-query access context, so one process serves any number of
// concurrent join, window, point and nearest-neighbour queries, each
// response carrying the paper's per-step statistics for that query
// alone.
//
// Usage:
//
//	spatialjoinserve [-addr :8080] -rel name=path [-rel name=path ...]
//	                 [-engine trstar|planesweep|quadratic]
//	                 [-conservative 5C|RMBR|CH|4C|MBC|MBE] [-progressive MER|MEC]
//	                 [-no-filter] [-page 4096] [-buffer 131072] [-policy lru|fifo|clock]
//	                 [-no-plan] [-cache-bytes 67108864] [-batch-window 2ms]
//	                 [-drain 15s] [-timeout 0] [-max-timeout 0]
//	                 [-max-inflight 0] [-max-queue 0] [-queue-wait 100ms]
//	                 [-faults spec]
//	spatialjoinserve [-addr :8080] -demo 810
//
// A -rel path may be a single relation store file (cmd/datagen -store)
// or a sharded store directory (cmd/datagen -store -shards N); sharded
// relations are served through the scatter-gather coordinator. The
// configuration flags must match the ones the stores were built with; a
// mismatch is rejected at startup via the stores' config fingerprint
// (for sharded stores, per tile). -demo skips the stores and serves a
// generated relation pair (demo-r, demo-s) instead — handy for a
// first run:
//
//	datagen -n 810 -store r.store && datagen -n 810 -strategy A -store s.store
//	spatialjoinserve -rel R=r.store -rel S=s.store &
//	curl 'localhost:8080/join?r=R&s=S&limit=3'
//
// Requests plan through the cost-based planner by default (see
// internal/serve); -no-plan pins the build configuration server-wide,
// and a single request opts out with &plan=off. GET /explain reports
// the per-tile-pair plans without (or with run=1, alongside) executing
// the join.
//
// Responses are served through the multi-query execution layer
// (DESIGN.md §12): repeated requests answer from a fingerprint-keyed
// LRU cache (-cache-bytes budgets it; <=0 disables), identical
// concurrent requests coalesce into one execution, and concurrent
// joins over the same relation pair within -batch-window share one
// synchronized traversal. GET /stats reports the cache, coalesce and
// batch counters, per-endpoint request counts with latency percentiles,
// and the process RSS.
//
// The server is resilient by configuration (DESIGN.md §14): -timeout /
// -max-timeout bound each query request server-side (requests may set
// ?timeout_ms=; a fired deadline answers 504), -max-inflight /
// -max-queue / -queue-wait shed excess load with 429 + Retry-After, a
// relation store that fails to open is quarantined (503 with the
// reason) while the healthy ones keep serving, and -faults (or
// $SPATIALJOIN_FAULTS) arms the deterministic fault-injection harness
// for chaos testing. GET /readyz reports readiness — 503 once draining
// begins or when nothing is loaded.
//
// The server shuts down gracefully: SIGINT or SIGTERM flips /readyz to
// draining, stops accepting new connections and lets in-flight queries
// finish (bounded by -drain) before exiting, so a load balancer
// rotating instances never sees mid-response resets.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/serve"
	"spatialjoin/internal/storage"
)

// relFlags collects repeated -rel name=path arguments in order.
type relFlags []struct{ name, path string }

func (r *relFlags) String() string {
	var parts []string
	for _, e := range *r {
		parts = append(parts, e.name+"="+e.path)
	}
	return strings.Join(parts, ",")
}

func (r *relFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*r = append(*r, struct{ name, path string }{name, path})
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	var rels relFlags
	flag.Var(&rels, "rel", "serve a relation store as name=path (repeatable)")
	demo := flag.Int("demo", 0, "serve a generated demo relation pair of this many objects instead of stores")
	seed := flag.Int64("seed", 9401, "with -demo: generation seed")
	engine := flag.String("engine", "trstar", "exact engine: trstar, planesweep, quadratic")
	conservative := flag.String("conservative", "5C", "conservative approximation: 5C, 4C, RMBR, CH, MBC, MBE")
	progressive := flag.String("progressive", "MER", "progressive approximation: MER, MEC")
	noFilter := flag.Bool("no-filter", false, "disable the geometric filter (step 2)")
	pageSize := flag.Int("page", 4096, "R*-tree page size in bytes")
	bufferBytes := flag.Int("buffer", 128<<10, "R*-tree buffer size in bytes")
	policy := flag.String("policy", "lru", "buffer replacement policy: lru, fifo, clock")
	joinWorkers := flag.Int("join-workers", 0, "streaming-join workers per request (0 = planner-chosen, or GOMAXPROCS with -no-plan)")
	noPlan := flag.Bool("no-plan", false, "disable the cost-based planner: serve every request under the build configuration verbatim")
	maxPairs := flag.Int("max-pairs", serve.DefaultMaxJoinPairs, "cap on join pairs returned inline per request")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes, "result/tile cache budget in bytes (<=0 disables caching)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "join batching window (0 disables shared-traversal batching)")
	drain := flag.Duration("drain", 15*time.Second, "how long to let in-flight requests drain on SIGINT/SIGTERM before closing connections")
	timeout := flag.Duration("timeout", 0, "default server-side deadline per query request (0 = none; requests may set ?timeout_ms=)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on every request deadline, default or ?timeout_ms= (0 = uncapped)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing query requests (0 disables admission control)")
	maxQueue := flag.Int("max-queue", 0, "admission wait-queue bound beyond -max-inflight; excess requests are shed with 429")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "how long a queued request waits for a slot before being shed")
	faults := flag.String("faults", os.Getenv("SPATIALJOIN_FAULTS"),
		"arm fault injections, e.g. tile-query:error@5 (default $SPATIALJOIN_FAULTS; testing only)")
	flag.Parse()

	if err := fault.Arm(*faults); err != nil {
		fatal(err)
	}
	if fault.Enabled() {
		log.Printf("WARNING: fault injection armed (%q) — this server WILL fail requests on purpose", *faults)
	}

	cfg := multistep.DefaultConfig()
	cfg.PageSize = *pageSize
	cfg.BufferBytes = *bufferBytes
	cfg.UseFilter = !*noFilter
	var err error
	if cfg.Engine, err = multistep.ParseEngine(*engine); err != nil {
		fatal(err)
	}
	if cfg.Filter.Conservative, err = approx.ParseKind(*conservative); err != nil {
		fatal(err)
	}
	if cfg.Filter.Progressive, err = approx.ParseKind(*progressive); err != nil {
		fatal(err)
	}
	if cfg.BufferPolicy, err = storage.ParsePolicy(*policy); err != nil {
		fatal(err)
	}

	if len(rels) == 0 && *demo <= 0 {
		fatal(fmt.Errorf("nothing to serve: pass at least one -rel name=path, or -demo N"))
	}

	cat := serve.NewCatalog()
	for _, e := range rels {
		// A failed store does not take the server down: the name is
		// quarantined (answers 503 with the reason) and the healthy
		// relations keep serving.
		if err := cat.LoadPath(e.name, e.path, cfg); err != nil {
			log.Printf("QUARANTINED %q: %v", e.name, err)
			continue
		}
		entry, _ := cat.Get(e.name)
		pages := 0
		for _, t := range entry.Sh.Tiles {
			pages += t.Rel.Tree.Pages()
		}
		log.Printf("opened %s: relation %q, %d objects in %d tile(s), %d tree pages",
			e.path, e.name, entry.Sh.Objects(), entry.Sh.Shards(), pages)
	}
	if *demo > 0 {
		log.Printf("generating demo relations (%d objects each)...", *demo)
		rp := data.GenerateMap(data.MapConfig{Cells: *demo, TargetVerts: 84, HoleFraction: 0.06, Seed: *seed})
		sp := data.StrategyA(rp, 0.45)
		cat.Add("demo-r", multistep.NewRelation("demo-r", rp, cfg), cfg)
		cat.Add("demo-s", multistep.NewRelation("demo-s", sp, cfg), cfg)
		log.Printf("serving demo-r and demo-s")
	}

	srv := serve.NewServer(cat)
	srv.JoinWorkers = *joinWorkers
	srv.MaxJoinPairs = *maxPairs
	srv.NoPlan = *noPlan
	srv.CacheBytes = *cacheBytes
	srv.BatchWindow = *batchWindow
	srv.RequestTimeout = *timeout
	srv.MaxRequestTimeout = *maxTimeout
	srv.MaxInFlight = *maxInflight
	srv.MaxQueue = *maxQueue
	srv.QueueWait = *queueWait

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// let in-flight queries drain up to -drain, then exit. A second
	// signal aborts immediately (signal.NotifyContext restores the
	// default handler once the context fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	log.Printf("serving %d relation(s) on %s — try /healthz, /relations, /stats, /window, /point, /nearest, /join, /explain",
		len(cat.Names()), *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		stop()
		// Flip readiness first so orchestrators stop routing here, then
		// drain: /readyz answers 503 while in-flight requests finish.
		srv.SetDraining(true)
		log.Printf("shutdown signal received; draining in-flight requests (up to %s)...", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v; closing remaining connections", err)
			_ = httpSrv.Close()
			os.Exit(1)
		}
		log.Printf("shutdown complete")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatialjoinserve:", err)
	os.Exit(1)
}
