// Command bench runs the paper's join workloads end to end and emits a
// versioned JSON measurement file — the performance trajectory of the
// repository. Each invocation measures the current build and writes (or
// updates) one labelled run in the output file, so successive PRs append
// comparable before/after numbers measured on the same machine:
//
//	go run ./cmd/bench -label baseline  -out BENCH_PR5.json
//	... optimize ...
//	go run ./cmd/bench -label optimized -out BENCH_PR5.json
//
// The workload grid is the paper's: the intersection join, the inclusion
// (contains) join and the within-distance (ε-)join, across the three
// exact engines and a set of worker counts, plus the tile-sharded
// scatter-gather join at the -shards tile counts. Relations are generated once
// (the section 5 style synthetic maps) and shared across workloads; every
// workload is warmed up once (paying the lazy per-object exact
// representations) and then measured over -reps repetitions with the
// process-wide allocation counters sampled around the measured window.
//
// Reported per workload: wall ns/op, response pairs/sec, ns per candidate
// pair (the unit the paper's per-step costs are expressed in), allocs/op
// and bytes/op. Reported per run: Go version, GOMAXPROCS, and the peak
// RSS of the process (VmHWM, Linux only).
//
// -planner switches to the adaptive-planning comparison grid: every
// static configuration of the paper grid (engine × filter, sequential)
// is measured next to the planner-chosen execution of the same join
// (multistep.WithPlan, nothing pinned) for each predicate. The summary
// line per predicate reports the planner's wall time as a multiple of
// the best static cell — the committed BENCH_PR7.json pins the ≤ 1.5×
// guarantee the regression tests enforce.
//
// -repeat N switches to the hot-query serving mode: N requests of a
// Zipf-skewed query mix (joins, windows, points, nearest) replayed
// against the HTTP serving layer twice — with the result cache disabled
// and with the default multi-query execution layer (single-flight
// coalescing, fingerprint-keyed LRU, batched traversals; DESIGN.md
// §12). The two rows report qps and cache_hit_rate side by side; the
// committed BENCH_PR8.json pins the hot-path speedup.
//
// -check validates an existing measurement file (parse + schema) and
// exits; CI uses it to keep the committed BENCH_*.json files honest.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"spatialjoin/internal/benchfmt"
	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/serve"
	"spatialjoin/internal/shard"
)

// The measurement-file schema lives in internal/benchfmt, shared with
// cmd/loadtest (the service-level load harness appends its closed-loop
// runs to the same trajectory files this command validates).
type (
	Run      = benchfmt.Run
	Workload = benchfmt.Workload
	Result   = benchfmt.Result
)

func main() {
	out := flag.String("out", "BENCH_PR5.json", "measurement file to write or update")
	label := flag.String("label", "current", "label of this run (an existing run with the same label is replaced)")
	commit := flag.String("commit", "", "commit identifier recorded with the run")
	n := flag.Int("n", 1200, "objects per relation")
	verts := flag.Int("verts", 48, "average vertices per object")
	seed := flag.Int64("seed", 4242, "data seed")
	reps := flag.Int("reps", 5, "measured repetitions per workload")
	epsilon := flag.Float64("epsilon", 0.005, "distance bound of the within workloads")
	workersFlag := flag.String("workers", "1,4", "comma-separated worker counts for the intersects workloads")
	shardsFlag := flag.String("shards", "1,2,4", "comma-separated tile counts for the sharded workloads (empty: skip)")
	plannerMode := flag.Bool("planner", false, "measure the planner-chosen execution against every static engine×filter cell per predicate")
	repeat := flag.Int("repeat", 0, "hot-query serving mode: replay this many requests of a Zipf-skewed query mix against the HTTP serving layer, cache off then on")
	check := flag.String("check", "", "validate an existing measurement file and exit")
	flag.Parse()

	if *check != "" {
		if err := benchfmt.Validate(*check); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid measurement file\n", *check)
		return
	}

	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		fatal(err)
	}
	var shardCounts []int
	if *shardsFlag != "" {
		if shardCounts, err = parseWorkers(*shardsFlag); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("generating 2×%d objects (~%d vertices, seed %d)...\n", *n, *verts, *seed)
	base := data.GenerateMap(data.MapConfig{Cells: *n, TargetVerts: *verts, Seed: *seed})
	shifted := data.StrategyA(base, 0.45)
	cfg := multistep.DefaultConfig()
	t0 := time.Now()
	rr := multistep.NewRelation("R", base, cfg)
	ss := multistep.NewRelation("S", shifted, cfg)
	fmt.Printf("preprocessing: %.2fs\n", time.Since(t0).Seconds())

	run := Run{
		Label:      *label,
		Commit:     *commit,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        benchfmt.CPUModel(),
		Workload: Workload{
			Objects: *n, Verts: *verts, Seed: *seed, Epsilon: *epsilon,
			Reps: *reps, Shifted: 0.45, PageSize: cfg.PageSize,
		},
	}

	engines := []multistep.Engine{multistep.EngineTRStar, multistep.EnginePlaneSweep, multistep.EngineQuadratic}

	if *repeat > 0 {
		run.Results = append(run.Results, measureServing(rr, ss, cfg, *epsilon, *repeat)...)
	} else if *plannerMode {
		// The planner comparison: per predicate, every static engine ×
		// filter cell (sequential — the planner may still choose more
		// workers for itself), then the planner-chosen execution of the
		// same join with nothing pinned.
		preds := []multistep.Predicate{
			multistep.Intersects(),
			multistep.WithinDistance(*epsilon),
			multistep.Contains(),
		}
		for _, pred := range preds {
			var best, worst Result
			for _, eng := range engines {
				for _, filt := range []bool{true, false} {
					res := measure(rr, ss, cfg, pred, eng, filt, 1, *reps)
					if best.Name == "" || res.WallNsPerOp < best.WallNsPerOp {
						best = res
					}
					if worst.Name == "" || res.WallNsPerOp > worst.WallNsPerOp {
						worst = res
					}
					run.Results = append(run.Results, res)
				}
			}
			pres := measurePlanned(rr, ss, pred, *reps)
			run.Results = append(run.Results, pres)
			fmt.Printf("  planner %-10s %8.1f ms/op = %.2fx best static (%s %.1f ms), worst %s %.1f ms\n",
				predName(pred), pres.WallNsPerOp/1e6, pres.WallNsPerOp/best.WallNsPerOp,
				best.Name, best.WallNsPerOp/1e6, worst.Name, worst.WallNsPerOp/1e6)
		}
	} else {
		// The intersection join: every engine at every worker count.
		for _, eng := range engines {
			for _, w := range workers {
				run.Results = append(run.Results,
					measure(rr, ss, cfg, multistep.Intersects(), eng, true, w, *reps))
			}
		}
		// The within-distance join: every engine, sequential (the distance
		// kernels are the variable under test, not the fan-out).
		for _, eng := range engines {
			run.Results = append(run.Results,
				measure(rr, ss, cfg, multistep.WithinDistance(*epsilon), eng, true, 1, *reps))
		}
		// The inclusion join: the exact inclusion test is engine-independent.
		run.Results = append(run.Results,
			measure(rr, ss, cfg, multistep.Contains(), multistep.EngineTRStar, true, 1, *reps))
		// The tile-sharded scatter-gather join (internal/shard): the
		// intersection workload at each tile count, default engine. One tile
		// prices the coordinator overhead over the monolithic join.
		for _, tiles := range shardCounts {
			shR := shard.Build("R", base, tiles, cfg)
			shS := shard.Build("S", shifted, tiles, cfg)
			run.Results = append(run.Results, measureSharded(shR, shS, cfg, tiles, *reps))
		}
	}

	run.PeakRSSBytes = benchfmt.PeakRSS()

	if err := benchfmt.WriteRun(*out, run); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote run %q (%d workloads) to %s\n", run.Label, len(run.Results), *out)
}

// measure runs one workload cell: a warm-up join (paying the lazy exact
// representations), then reps measured joins with the allocation counters
// sampled around the whole window. useFilter false switches the
// geometric filter off at query time (the static filter dimension of
// the planner comparison).
func measure(r, s *multistep.Relation, cfg multistep.Config, pred multistep.Predicate, eng multistep.Engine, useFilter bool, workers, reps int) Result {
	cfg.Engine = eng
	cfg.UseFilter = cfg.UseFilter && useFilter
	opts := []multistep.Option{
		multistep.WithConfig(cfg),
		multistep.WithPredicate(pred),
		multistep.WithWorkers(workers),
		multistep.WithBufferless(),
	}
	join := func() multistep.Stats {
		_, st, err := multistep.Join(context.Background(), r, s, opts...)
		if err != nil {
			fatal(err)
		}
		return st
	}
	st := join() // warm-up

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		st = join()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	name := fmt.Sprintf("%s/%s/w%d", predName(pred), engineName(eng), workers)
	if !cfg.UseFilter {
		name = fmt.Sprintf("%s/%s/nofilter/w%d", predName(pred), engineName(eng), workers)
	}
	res := Result{
		Name:           name,
		Predicate:      predName(pred),
		Engine:         engineName(eng),
		Workers:        workers,
		NoFilter:       !cfg.UseFilter,
		WallNsPerOp:    float64(wall.Nanoseconds()) / float64(reps),
		ResultPairs:    st.ResultPairs,
		CandidatePairs: st.CandidatePairs,
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(reps),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(reps),
	}
	if res.WallNsPerOp > 0 {
		res.PairsPerSec = float64(st.ResultPairs) * 1e9 / res.WallNsPerOp
	}
	if st.CandidatePairs > 0 {
		res.NsPerCandidate = res.WallNsPerOp / float64(st.CandidatePairs)
	}
	fmt.Printf("  %-28s %10.1f ms/op %12.0f pairs/sec %10.0f allocs/op\n",
		res.Name, res.WallNsPerOp/1e6, res.PairsPerSec, res.AllocsPerOp)
	return res
}

// measurePlanned measures the planner-chosen execution of one join:
// nothing pinned, multistep.WithPlan resolves engine, filter and worker
// count from the relations' statistics (warm-up included, so the
// measured window also benefits from one round of feedback, as a served
// deployment would).
func measurePlanned(r, s *multistep.Relation, pred multistep.Predicate, reps int) Result {
	var ex multistep.Explain
	opts := []multistep.Option{
		multistep.WithPredicate(pred),
		multistep.WithPlan(),
		multistep.WithBufferless(),
		multistep.WithExplain(&ex),
	}
	join := func() multistep.Stats {
		_, st, err := multistep.Join(context.Background(), r, s, opts...)
		if err != nil {
			fatal(err)
		}
		return st
	}
	st := join() // warm-up

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		st = join()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	res := Result{
		Name:           fmt.Sprintf("planner/%s", predName(pred)),
		Predicate:      predName(pred),
		Engine:         ex.Plan.Engine,
		Workers:        ex.Plan.Workers,
		Planned:        true,
		NoFilter:       !ex.Plan.UseFilter,
		WallNsPerOp:    float64(wall.Nanoseconds()) / float64(reps),
		ResultPairs:    st.ResultPairs,
		CandidatePairs: st.CandidatePairs,
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(reps),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(reps),
	}
	if res.WallNsPerOp > 0 {
		res.PairsPerSec = float64(st.ResultPairs) * 1e9 / res.WallNsPerOp
	}
	if st.CandidatePairs > 0 {
		res.NsPerCandidate = res.WallNsPerOp / float64(st.CandidatePairs)
	}
	fmt.Printf("  %-28s %10.1f ms/op %12.0f pairs/sec %10.0f allocs/op\n",
		res.Name, res.WallNsPerOp/1e6, res.PairsPerSec, res.AllocsPerOp)
	return res
}

// measureServing is the -repeat hot-query mode: the same Zipf-skewed
// request sequence replayed against the HTTP serving layer twice — once
// with the result cache disabled (every request re-executes) and once
// with the default multi-query execution (DESIGN.md §12). The reported
// QPS pair prices the shared-work layer on a skewed, repetitive
// workload; CacheHitRate is the fraction of requests the cache
// answered.
func measureServing(rr, ss *multistep.Relation, cfg multistep.Config, eps float64, total int) []Result {
	cat := serve.NewCatalog()
	cat.Add("R", rr, cfg)
	cat.Add("S", ss, cfg)

	// The distinct queries of the mix, hottest first. plan=off pins the
	// configuration so both servers execute identical physical plans.
	urls := []string{
		"/join?r=R&s=S&limit=100&plan=off",
		"/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4&plan=off",
		fmt.Sprintf("/join?r=R&s=S&epsilon=%g&limit=100&plan=off", eps),
		"/point?rel=R&x=0.31&y=0.47&plan=off",
		"/nearest?rel=S&x=0.52&y=0.33&k=8",
		"/join?r=R&s=S&predicate=contains&plan=off",
		"/window?rel=S&minx=0.55&miny=0.1&maxx=0.8&maxy=0.3&plan=off",
		"/point?rel=S&x=0.72&y=0.64&plan=off",
		"/window?rel=R&minx=0.05&miny=0.6&maxx=0.3&maxy=0.9&epsilon=0.02&plan=off",
		"/nearest?rel=R&x=0.12&y=0.81&k=4",
	}
	// Zipf-ish skew: rank k draws with weight 1/(k+1). A fixed LCG
	// replays the identical sequence for both servers.
	var table []int
	for k := range urls {
		for n := 0; n < 2*len(urls)/(k+1); n++ {
			table = append(table, k)
		}
	}
	seq := make([]int, total)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range seq {
		x = x*6364136223846793005 + 1442695040888963407
		seq[i] = table[(x>>33)%uint64(len(table))]
	}

	var out []Result
	for _, cached := range []bool{false, true} {
		srv := serve.NewServer(cat)
		if !cached {
			srv.CacheBytes = -1
		}
		h := srv.Handler()
		do := func(url string) {
			req := httptest.NewRequest("GET", url, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				fatal(fmt.Errorf("GET %s: status %d: %s", url, rec.Code, rec.Body))
			}
		}
		// Warm-up: one pass over the distinct queries. It pays the lazy
		// exact representations on both servers; on the cached server it
		// also pre-fills the cache — the hot-serving scenario under test.
		for _, u := range urls {
			do(u)
		}
		t0 := time.Now()
		for _, k := range seq {
			do(urls[k])
		}
		wall := time.Since(t0)

		name := "serve/hot/nocache"
		if cached {
			name = "serve/hot/cache"
		}
		res := Result{
			Name:        name,
			Predicate:   "mix",
			Engine:      "serve",
			Workers:     runtime.GOMAXPROCS(0),
			WallNsPerOp: float64(wall.Nanoseconds()) / float64(total),
			QPS:         float64(total) / wall.Seconds(),
		}
		if cached {
			req := httptest.NewRequest("GET", "/stats", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var st struct {
				Cache struct {
					Hits   int64 `json:"hits"`
					Misses int64 `json:"misses"`
				} `json:"cache"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				fatal(err)
			}
			if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
				res.CacheHitRate = float64(st.Cache.Hits) / float64(lookups)
			}
		}
		fmt.Printf("  %-28s %10.2f ms/op %12.0f qps   hit rate %.3f\n",
			res.Name, res.WallNsPerOp/1e6, res.QPS, res.CacheHitRate)
		out = append(out, res)
	}
	return out
}

// measureSharded is measure for the scatter-gather join of two sharded
// relations (tile-pair sub-joins, merged response).
func measureSharded(r, s *shard.Sharded, cfg multistep.Config, tiles, reps int) Result {
	opts := []multistep.Option{
		multistep.WithConfig(cfg),
		multistep.WithBufferless(),
	}
	join := func() shard.JoinStats {
		_, st, err := shard.Join(context.Background(), r, s, opts...)
		if err != nil {
			fatal(err)
		}
		return st
	}
	st := join() // warm-up

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		st = join()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	res := Result{
		Name:           fmt.Sprintf("sharded/%s/t%d", engineName(cfg.Engine), tiles),
		Predicate:      "intersects",
		Engine:         engineName(cfg.Engine),
		Workers:        runtime.GOMAXPROCS(0),
		Shards:         tiles,
		WallNsPerOp:    float64(wall.Nanoseconds()) / float64(reps),
		ResultPairs:    st.ResultPairs,
		CandidatePairs: st.CandidatePairs,
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(reps),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(reps),
	}
	if res.WallNsPerOp > 0 {
		res.PairsPerSec = float64(st.ResultPairs) * 1e9 / res.WallNsPerOp
	}
	if st.CandidatePairs > 0 {
		res.NsPerCandidate = res.WallNsPerOp / float64(st.CandidatePairs)
	}
	fmt.Printf("  %-28s %10.1f ms/op %12.0f pairs/sec %10.0f allocs/op\n",
		res.Name, res.WallNsPerOp/1e6, res.PairsPerSec, res.AllocsPerOp)
	return res
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, w)
	}
	return out, nil
}

func predName(p multistep.Predicate) string {
	name := p.String()
	if i := strings.IndexByte(name, '('); i >= 0 {
		name = name[:i]
	}
	return name
}

func engineName(e multistep.Engine) string {
	switch e {
	case multistep.EngineTRStar:
		return "trstar"
	case multistep.EnginePlaneSweep:
		return "planesweep"
	case multistep.EngineQuadratic:
		return "quadratic"
	}
	return "engine?"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
