// Command spatialjoin runs the complete multi-step spatial join end to end
// and prints per-step statistics and the modelled cost breakdown — a
// one-command demonstration of the paper's processor. Inputs are either
// generated on the fly (the default) or opened from prebuilt relation
// stores written by cmd/datagen, in which case the expensive
// preprocessing is skipped entirely.
//
// Usage:
//
//	spatialjoin [-n 810] [-verts 84] [-strategy A|B] [-engine trstar|planesweep|quadratic]
//	            [-conservative 5C|RMBR|CH|4C|MBC|MBE] [-progressive MER|MEC]
//	            [-no-filter] [-page 4096] [-policy lru|fifo|clock] [-seed 9401]
//	            [-predicate intersects|contains|within] [-epsilon ε]
//	            [-parallel N] [-stream] [-plan=false] [-explain]
//	            [-rstore R.store -sstore S.store]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -cpuprofile and -memprofile write pprof profiles of the join phase
// (preprocessing excluded — CPU profiling starts after the relations are
// built, and the heap profile snapshots the live data right after the
// join), so performance work starts from evidence: see README
// "Profiling the hot path".
//
// Joins run through the unified multistep.Join entry point: -predicate
// selects the spatial predicate (-epsilon is the distance bound of the
// within predicate, and implies it), -parallel spreads the pipeline over
// N workers, and -stream switches from collect-and-sort to the
// bounded-memory streaming emission. -rstore/-sstore open prebuilt
// stores (both must be given, and the configuration flags must match the
// ones the stores were built with — a mismatch is rejected via the
// stores' config fingerprint).
//
// The cost-based planner (internal/plan) resolves the options left at
// their defaults: engine, filter and worker count are chosen from the
// relations' statistics unless the corresponding flag was set explicitly
// on the command line (an explicit -engine/-no-filter pins both, an
// explicit -parallel pins the workers — exactly the WithConfig /
// WithWorkers contract). -plan=false disables planning entirely;
// -explain prints the chosen plan and its predicted cost before the
// join, and the predicted-vs-actual error after it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/storage"
)

func main() {
	n := flag.Int("n", 810, "objects per relation")
	verts := flag.Int("verts", 84, "average vertices per object")
	strategy := flag.String("strategy", "A", "test-series strategy: A (shifted copy) or B (random placement)")
	engine := flag.String("engine", "trstar", "exact engine: trstar, planesweep, quadratic")
	conservative := flag.String("conservative", "5C", "conservative approximation: 5C, 4C, RMBR, CH, MBC, MBE")
	progressive := flag.String("progressive", "MER", "progressive approximation: MER, MEC")
	noFilter := flag.Bool("no-filter", false, "disable the geometric filter (step 2)")
	pageSize := flag.Int("page", 4096, "R*-tree page size in bytes")
	policy := flag.String("policy", "lru", "buffer replacement policy: lru, fifo, clock")
	seed := flag.Int64("seed", 9401, "data seed")
	predicate := flag.String("predicate", "intersects", "join predicate: intersects, contains, or within (the ε-distance join)")
	epsilon := flag.Float64("epsilon", 0, "distance bound of the within predicate (implies -predicate within)")
	step1 := flag.String("step1", "rstar", "step 1 candidate generator: rstar, zorder, nested")
	parallel := flag.Int("parallel", 0, "filter/exact worker count (0 = sequential; with -stream, 0 = GOMAXPROCS)")
	stream := flag.Bool("stream", false, "use the streaming pipeline (JoinStream): bounded memory, -parallel workers")
	planOn := flag.Bool("plan", true, "resolve unset options (engine, filter, workers) through the cost-based planner; explicitly-set flags stay pinned")
	explain := flag.Bool("explain", false, "print the chosen plan and predicted cost before the join, and the predicted-vs-actual error after (implies -plan)")
	rstorePath := flag.String("rstore", "", "open relation R from this prebuilt store instead of generating it")
	sstorePath := flag.String("sstore", "", "open relation S from this prebuilt store instead of generating it")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the join phase to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the join to this file")
	flag.Parse()

	cfg := multistep.DefaultConfig()
	cfg.PageSize = *pageSize
	cfg.UseFilter = !*noFilter
	var err error
	if cfg.Engine, err = multistep.ParseEngine(*engine); err != nil {
		fatal(err)
	}
	if cfg.Filter.Conservative, err = approx.ParseKind(*conservative); err != nil {
		fatal(err)
	}
	if cfg.Filter.Progressive, err = approx.ParseKind(*progressive); err != nil {
		fatal(err)
	}
	if cfg.BufferPolicy, err = storage.ParsePolicy(*policy); err != nil {
		fatal(err)
	}
	switch strings.ToLower(*step1) {
	case "rstar":
		cfg.Step1 = multistep.Step1RStar
	case "zorder", "z":
		cfg.Step1 = multistep.Step1ZOrder
	case "nested", "nl":
		cfg.Step1 = multistep.Step1NestedLoops
	default:
		fatal(fmt.Errorf("unknown step1 generator %q", *step1))
	}

	var r, s *multistep.Relation
	var prep time.Duration
	switch {
	case *rstorePath != "" && *sstorePath != "":
		t0 := time.Now()
		if r, err = multistep.OpenRelationFile(*rstorePath, cfg); err != nil {
			fatal(fmt.Errorf("open %s: %w", *rstorePath, err))
		}
		if s, err = multistep.OpenRelationFile(*sstorePath, cfg); err != nil {
			fatal(fmt.Errorf("open %s: %w", *sstorePath, err))
		}
		prep = time.Since(t0)
		fmt.Printf("opened prebuilt stores %s (%d objects) and %s (%d objects) in %.3fs — preprocessing skipped\n",
			*rstorePath, len(r.Objects), *sstorePath, len(s.Objects), prep.Seconds())
	case *rstorePath != "" || *sstorePath != "":
		fatal(fmt.Errorf("-rstore and -sstore must be given together"))
	default:
		fmt.Printf("generating %d objects with ~%d vertices (strategy %s)...\n", *n, *verts, *strategy)
		base := data.GenerateMap(data.MapConfig{Cells: *n, TargetVerts: *verts, HoleFraction: 0.06, Seed: *seed})
		var rPolys, sPolys = base, base
		switch strings.ToUpper(*strategy) {
		case "A":
			sPolys = data.StrategyA(base, 0.45)
		case "B":
			rPolys = data.StrategyB(base, *seed+1)
			sPolys = data.StrategyB(base, *seed+2)
		default:
			fatal(fmt.Errorf("unknown strategy %q", *strategy))
		}
		t0 := time.Now()
		r = multistep.NewRelation("R", rPolys, cfg)
		s = multistep.NewRelation("S", sPolys, cfg)
		prep = time.Since(t0)
		fmt.Printf("preprocessing: %.2fs (approximations + R*-trees, entry %d bytes)\n",
			prep.Seconds(), multistep.EntryBytes(cfg))
	}

	predName := *predicate
	if *epsilon > 0 && strings.EqualFold(predName, "intersects") {
		predName = "within"
	}
	pred, err := multistep.ParsePredicate(predName, *epsilon)
	if err != nil {
		fatal(err)
	}

	// One entry point for every variant: the predicate, the worker count
	// and the emission mode are orthogonal options of the unified join.
	// Explicitly-set flags pin their dimension for the planner: flag.Visit
	// distinguishes "-engine trstar" (a decision) from the default value
	// (an open choice).
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// -explain without an explicit -plan=false still plans; an explicit
	// -plan=false -explain echoes the static configuration instead.
	usePlanner := *planOn || (*explain && !set["plan"])
	opts := []multistep.Option{multistep.WithPredicate(pred)}
	if !usePlanner || set["engine"] || set["no-filter"] {
		opts = append(opts, multistep.WithConfig(cfg))
	}
	if usePlanner {
		opts = append(opts, multistep.WithPlan())
	}
	workers := *parallel
	if workers <= 0 && !*stream && !usePlanner {
		workers = 1 // sequential measurement mode, the paper's accounting
	}
	if workers > 0 || !usePlanner {
		opts = append(opts, multistep.WithWorkers(workers))
	}
	var pairs []multistep.Pair
	if *stream {
		// The streaming pipeline emits pairs as they are decided instead
		// of materializing the candidate set; collect them here only for
		// the summary line.
		opts = append(opts, multistep.WithStream(func(p multistep.Pair) { pairs = append(pairs, p) }))
	}
	// The explain capture rides along on every run: it resolves the
	// executed engine and filter for the report below, planned or not.
	var ex multistep.Explain
	opts = append(opts, multistep.WithExplain(&ex))
	if *explain {
		pre, err := multistep.ExplainJoin(r, s, opts...)
		if err != nil {
			fatal(err)
		}
		p := pre.Plan
		fmt.Printf("\nplan: engine=%s filter=%v workers=%d planned=%v\n", p.Engine, p.UseFilter, p.Workers, p.Planned)
		if p.Planned {
			fmt.Printf("predicted: %.0f candidates, %.0f exact tests, %.0f result pairs, cost %.2fms\n",
				p.PredictedCandidates, p.PredictedExactTested, p.PredictedResultPairs, p.PredictedCostNs/1e6)
			if p.StreamRecommended && !*stream {
				fmt.Println("planner recommends -stream: the predicted response set is large")
			}
		}
	}
	// Profiling brackets the join phase only: preprocessing (approximation
	// computation, tree construction) is excluded, exactly as the paper
	// excludes it from the measured cost.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	t1 := time.Now()
	collected, st, err := multistep.Join(context.Background(), r, s, opts...)
	if err != nil {
		fatal(err)
	}
	if !*stream {
		pairs = collected
	}
	joinTime := time.Since(t1)
	if *cpuprofile != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // flush build garbage so the profile shows live join state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	// Report what actually executed: under the planner, cfg's engine and
	// filter flags are only the search space, not the choice.
	if e, err := multistep.ParseEngine(ex.Plan.Engine); err == nil {
		cfg.Engine = e
	}
	cfg.UseFilter = ex.Plan.UseFilter

	fmt.Printf("\njoin wall time: %.3fs (predicate %s, buffer policy %s)\n\n",
		joinTime.Seconds(), pred, cfg.BufferPolicy)
	fmt.Printf("step 1 (MBR-join):      %8d candidate pairs, %d page accesses\n",
		st.CandidatePairs, st.PageAccessesR+st.PageAccessesS)
	if cfg.UseFilter {
		fmt.Printf("step 2 (filter %s+%s): %8d hits, %d false hits identified (%.0f%% of candidates)\n",
			cfg.Filter.Conservative, cfg.Filter.Progressive,
			st.FilterHits, st.FilterFalseHits, 100*st.Identified())
	}
	fmt.Printf("step 3 (%s):   %8d pairs tested, %d hits; ops: %s\n",
		cfg.Engine, st.ExactTested, st.ExactHits, st.Ops.String())
	fmt.Printf("\nresponse set: %d pairs (%s)\n", len(pairs), pred)
	if *explain && ex.Plan.Planned {
		fmt.Printf("plan accuracy: candidates %.2fx, cost %.2fx (predicted/actual; 1 is perfect)\n",
			ex.CandidateError, ex.CostError)
	}

	b := costmodel.FromStats(st, cfg.Engine, costmodel.PaperParams())
	fmt.Printf("modelled cost (section 5): MBR-join %.1fs + object access %.1fs + exact %.1fs = %.1fs\n",
		b.MBRJoin, b.ObjectAccess, b.ExactTest, b.Total())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatialjoin:", err)
	os.Exit(1)
}
