// Command spatialjoin runs the complete multi-step spatial join end to end
// on generated cartographic data and prints per-step statistics and the
// modelled cost breakdown — a one-command demonstration of the paper's
// processor.
//
// Usage:
//
//	spatialjoin [-n 810] [-verts 84] [-strategy A|B] [-engine trstar|planesweep|quadratic]
//	            [-conservative 5C|RMBR|CH|4C|MBC|MBE] [-progressive MER|MEC]
//	            [-no-filter] [-page 4096] [-seed 9401]
//	            [-parallel N] [-stream]
//
// -parallel spreads the filter and exact steps over N workers
// (JoinParallel); -stream additionally runs step 1 partitioned and the
// whole join as the bounded-memory streaming pipeline (JoinStream).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
)

func main() {
	n := flag.Int("n", 810, "objects per relation")
	verts := flag.Int("verts", 84, "average vertices per object")
	strategy := flag.String("strategy", "A", "test-series strategy: A (shifted copy) or B (random placement)")
	engine := flag.String("engine", "trstar", "exact engine: trstar, planesweep, quadratic")
	conservative := flag.String("conservative", "5C", "conservative approximation: 5C, 4C, RMBR, CH, MBC, MBE")
	progressive := flag.String("progressive", "MER", "progressive approximation: MER, MEC")
	noFilter := flag.Bool("no-filter", false, "disable the geometric filter (step 2)")
	pageSize := flag.Int("page", 4096, "R*-tree page size in bytes")
	seed := flag.Int64("seed", 9401, "data seed")
	predicate := flag.String("predicate", "intersects", "join predicate: intersects or contains")
	step1 := flag.String("step1", "rstar", "step 1 candidate generator: rstar, zorder, nested")
	parallel := flag.Int("parallel", 0, "filter/exact worker count (0 = sequential; with -stream, 0 = GOMAXPROCS)")
	stream := flag.Bool("stream", false, "use the streaming pipeline (JoinStream): bounded memory, -parallel workers")
	flag.Parse()

	cfg := multistep.DefaultConfig()
	cfg.PageSize = *pageSize
	cfg.UseFilter = !*noFilter
	var err error
	if cfg.Engine, err = parseEngine(*engine); err != nil {
		fatal(err)
	}
	if cfg.Filter.Conservative, err = parseKind(*conservative); err != nil {
		fatal(err)
	}
	if cfg.Filter.Progressive, err = parseKind(*progressive); err != nil {
		fatal(err)
	}
	switch strings.ToLower(*step1) {
	case "rstar":
		cfg.Step1 = multistep.Step1RStar
	case "zorder", "z":
		cfg.Step1 = multistep.Step1ZOrder
	case "nested", "nl":
		cfg.Step1 = multistep.Step1NestedLoops
	default:
		fatal(fmt.Errorf("unknown step1 generator %q", *step1))
	}

	fmt.Printf("generating %d objects with ~%d vertices (strategy %s)...\n", *n, *verts, *strategy)
	base := data.GenerateMap(data.MapConfig{Cells: *n, TargetVerts: *verts, HoleFraction: 0.06, Seed: *seed})
	var rPolys, sPolys = base, base
	switch strings.ToUpper(*strategy) {
	case "A":
		sPolys = data.StrategyA(base, 0.45)
	case "B":
		rPolys = data.StrategyB(base, *seed+1)
		sPolys = data.StrategyB(base, *seed+2)
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	t0 := time.Now()
	r := multistep.NewRelation("R", rPolys, cfg)
	s := multistep.NewRelation("S", sPolys, cfg)
	prep := time.Since(t0)

	t1 := time.Now()
	var pairs []multistep.Pair
	var st multistep.Stats
	switch {
	case strings.EqualFold(*predicate, "contains"):
		if *stream || *parallel > 0 {
			fmt.Fprintln(os.Stderr, "spatialjoin: -stream/-parallel are ignored with -predicate contains (the inclusion join is sequential)")
		}
		pairs, st = multistep.JoinContains(r, s, cfg)
	case *stream:
		// The streaming pipeline emits pairs as they are decided instead
		// of materializing the candidate set; collect them here only for
		// the summary line.
		st = multistep.JoinStream(r, s, cfg, multistep.StreamOptions{Workers: *parallel},
			func(p multistep.Pair) { pairs = append(pairs, p) })
	case *parallel > 0:
		pairs, st = multistep.JoinParallel(r, s, cfg, *parallel)
	default:
		pairs, st = multistep.Join(r, s, cfg)
	}
	joinTime := time.Since(t1)

	fmt.Printf("\npreprocessing: %.2fs (approximations + R*-trees, entry %d bytes)\n",
		prep.Seconds(), multistep.EntryBytes(cfg))
	fmt.Printf("join wall time: %.3fs\n\n", joinTime.Seconds())
	fmt.Printf("step 1 (MBR-join):      %8d candidate pairs, %d page accesses\n",
		st.CandidatePairs, st.PageAccessesR+st.PageAccessesS)
	if cfg.UseFilter {
		fmt.Printf("step 2 (filter %s+%s): %8d hits, %d false hits identified (%.0f%% of candidates)\n",
			cfg.Filter.Conservative, cfg.Filter.Progressive,
			st.FilterHits, st.FilterFalseHits, 100*st.Identified())
	}
	fmt.Printf("step 3 (%s):   %8d pairs tested, %d hits; ops: %s\n",
		cfg.Engine, st.ExactTested, st.ExactHits, st.Ops.String())
	fmt.Printf("\nresponse set: %d intersecting pairs\n", len(pairs))

	b := costmodel.FromStats(st, cfg.Engine, costmodel.PaperParams())
	fmt.Printf("modelled cost (section 5): MBR-join %.1fs + object access %.1fs + exact %.1fs = %.1fs\n",
		b.MBRJoin, b.ObjectAccess, b.ExactTest, b.Total())
}

func parseEngine(s string) (multistep.Engine, error) {
	switch strings.ToLower(s) {
	case "trstar", "tr*", "tr":
		return multistep.EngineTRStar, nil
	case "planesweep", "sweep":
		return multistep.EnginePlaneSweep, nil
	case "quadratic", "naive":
		return multistep.EngineQuadratic, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

func parseKind(s string) (approx.Kind, error) {
	switch strings.ToUpper(strings.ReplaceAll(s, "-", "")) {
	case "5C":
		return approx.C5, nil
	case "4C":
		return approx.C4, nil
	case "RMBR":
		return approx.RMBR, nil
	case "CH":
		return approx.CH, nil
	case "MBC":
		return approx.MBC, nil
	case "MBE":
		return approx.MBE, nil
	case "MER":
		return approx.MER, nil
	case "MEC":
		return approx.MEC, nil
	}
	return 0, fmt.Errorf("unknown approximation %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatialjoin:", err)
	os.Exit(1)
}
