// Command svgmap renders generated cartographic data and the paper's
// approximations as SVG — the visual counterpart of the paper's Figures 3
// (approximations of Great Britain), 7 (MEC/MER) and 14 (decompositions).
//
// Usage:
//
//	svgmap -mode map   [-n 120] [-verts 84] [-seed 9401] > map.svg
//	svgmap -mode approx [-verts 200] [-seed 9401]        > approx.svg
//	svgmap -mode decomp [-verts 200] [-seed 9401]        > decomp.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/svg"
)

func main() {
	mode := flag.String("mode", "map", "map | approx | decomp")
	n := flag.Int("n", 120, "polygons (map mode)")
	verts := flag.Int("verts", 84, "average vertices")
	seed := flag.Int64("seed", 9401, "data seed")
	size := flag.Int("size", 900, "image size in pixels")
	flag.Parse()

	switch *mode {
	case "map":
		rel := data.GenerateMap(data.MapConfig{Cells: *n, TargetVerts: *verts, HoleFraction: 0.12, Seed: *seed})
		view := geom.EmptyRect()
		for _, p := range rel {
			view = view.Union(p.Bounds())
		}
		c := svg.NewCanvas(view.Expand(view.Width()*0.02), *size)
		for i, p := range rel {
			st := svg.DefaultStyle()
			if i%7 == 0 {
				st.Fill = "#b8c9a9"
			}
			c.Polygon(p, st)
		}
		fmt.Print(c.String())

	case "approx":
		p := onePolygon(*verts, *seed)
		s := approx.Compute(p, approx.AllOptions())
		c := svg.NewCanvas(p.Bounds().Expand(p.Bounds().Width()*0.25), *size)
		c.Polygon(p, svg.DefaultStyle())
		c.Approximations(s, []approx.Kind{
			approx.MBR, approx.RMBR, approx.CH, approx.C5, approx.MBC, approx.MBE,
			approx.MEC, approx.MER,
		})
		fmt.Print(c.String())

	case "decomp":
		p := onePolygon(*verts, *seed)
		c := svg.NewCanvas(p.Bounds().Expand(p.Bounds().Width()*0.05), *size)
		c.Polygon(p, svg.Style{Stroke: "#333333", StrokeWidth: 2})
		c.Trapezoids(decomp.Trapezoidize(p), svg.Style{Stroke: "#d62728", StrokeWidth: 0.6})
		fmt.Print(c.String())

	default:
		fmt.Fprintf(os.Stderr, "svgmap: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// onePolygon picks the most complex polygon of a small generated map.
func onePolygon(verts int, seed int64) *geom.Polygon {
	rel := data.GenerateMap(data.MapConfig{Cells: 16, TargetVerts: verts, HoleFraction: 0.5, Seed: seed})
	best := rel[0]
	for _, p := range rel {
		if p.NumVertices() > best.NumVertices() {
			best = p
		}
	}
	return best
}
