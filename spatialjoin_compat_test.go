//lint:file-ignore SA1019 this file proves the deprecated wrappers equal the unified API
package spatialjoin_test

import (
	"context"
	"reflect"
	"testing"

	"spatialjoin"
)

// TestDeprecatedWrappersMatchUnifiedAPI pins every deprecated
// pre-redesign facade name to the unified Join/Query surface: identical
// response sets AND identical statistics (buffer hit/miss accounting
// included), so downstream code migrating via the README table observes
// no behaviour change. Together with the multistep golden tests (which
// pin the unified API itself to the pre-refactor Stats) this proves
// old wrapper ≡ new API ≡ pre-redesign behaviour.
func TestDeprecatedWrappersMatchUnifiedAPI(t *testing.T) {
	base := spatialjoin.GenerateMap(spatialjoin.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	shifted := spatialjoin.ShiftedCopy(base, 0.45)
	cfg := spatialjoin.DefaultConfig()
	cfg.BufferBytes = 8192 // small buffer: non-trivial accounting
	r := spatialjoin.NewRelation("R", base, cfg)
	s := spatialjoin.NewRelation("S", shifted, cfg)
	ctx := context.Background()

	clear := func() {
		r.Tree.Buffer().Clear()
		s.Tree.Buffer().Clear()
	}

	// JoinParallel ≡ Join + WithWorkers.
	clear()
	wrapPairs, wrapSt := spatialjoin.JoinParallel(r, s, cfg, 3)
	clear()
	newPairs, newSt, err := spatialjoin.Join(ctx, r, s, spatialjoin.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrapPairs, newPairs) || !reflect.DeepEqual(wrapSt, newSt) {
		t.Errorf("JoinParallel diverges from the unified Join:\n old %+v\n new %+v", wrapSt, newSt)
	}

	// JoinStream ≡ Join + WithStream (unordered emission; compare sorted).
	clear()
	var streamed []spatialjoin.Pair
	streamSt := spatialjoin.JoinStream(r, s, cfg, spatialjoin.StreamOptions{Workers: 2},
		func(p spatialjoin.Pair) { streamed = append(streamed, p) })
	if !reflect.DeepEqual(streamSt, newSt) {
		t.Errorf("JoinStream stats diverge:\n old %+v\n new %+v", streamSt, newSt)
	}
	if len(streamed) != len(newPairs) {
		t.Errorf("JoinStream emitted %d pairs, unified Join %d", len(streamed), len(newPairs))
	}

	// JoinContains ≡ Join + Contains predicate.
	clear()
	contPairs, contSt := spatialjoin.JoinContains(r, r, cfg)
	clear()
	newCont, newContSt, err := spatialjoin.Join(ctx, r, r,
		spatialjoin.WithPredicate(spatialjoin.Contains()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(contPairs, newCont) || !reflect.DeepEqual(contSt, newContSt) {
		t.Errorf("JoinContains diverges:\n old %+v\n new %+v", contSt, newContSt)
	}

	// WindowQuery / PointQuery ≡ Query + ForWindow / ForPoint.
	w := spatialjoin.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.45, MaxY: 0.4}
	clear()
	wrapIDs, wrapWSt := spatialjoin.WindowQuery(r, w, cfg)
	clear()
	res, err := spatialjoin.Query(ctx, r, spatialjoin.ForWindow(w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrapIDs, res.IDs) || wrapWSt != res.Stats {
		t.Errorf("WindowQuery diverges:\n old %v %+v\n new %v %+v", wrapIDs, wrapWSt, res.IDs, res.Stats)
	}
	p := spatialjoin.Point{X: 0.31, Y: 0.47}
	clear()
	ptIDs, ptSt := spatialjoin.PointQuery(r, p, cfg)
	clear()
	ptRes, err := spatialjoin.Query(ctx, r, spatialjoin.ForPoint(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ptIDs, ptRes.IDs) || ptSt != ptRes.Stats {
		t.Errorf("PointQuery diverges: old %v %+v, new %v %+v", ptIDs, ptSt, ptRes.IDs, ptRes.Stats)
	}

	// NearestObjects ≡ Query + ForNearest (session accounting).
	nn := spatialjoin.NearestObjectsAccess(r, r.NewSession(), p, 4)
	nnRes, err := spatialjoin.Query(ctx, r, spatialjoin.ForNearest(p, 4),
		spatialjoin.WithSession(r.NewSession()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nn, nnRes.Neighbors) {
		t.Errorf("NearestObjects diverges: old %v, new %v", nn, nnRes.Neighbors)
	}

	// The *Access twins ≡ WithSessions.
	clear()
	axPairs, axSt := spatialjoin.JoinContainsAccess(r, s, r.NewSession(), s.NewSession(), cfg)
	newAx, newAxSt, err := spatialjoin.Join(ctx, r, s,
		spatialjoin.WithPredicate(spatialjoin.Contains()),
		spatialjoin.WithSessions(r.NewSession(), s.NewSession()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(axPairs, newAx) || !reflect.DeepEqual(axSt, newAxSt) {
		t.Errorf("JoinContainsAccess diverges:\n old %+v\n new %+v", axSt, newAxSt)
	}
}

// TestUnifiedAPIErrors pins the error surface of the new entry points.
func TestUnifiedAPIErrors(t *testing.T) {
	base := spatialjoin.GenerateMap(spatialjoin.MapConfig{Cells: 20, TargetVerts: 24, Seed: 5})
	cfgA := spatialjoin.DefaultConfig()
	cfgB := spatialjoin.DefaultConfig()
	cfgB.Engine = spatialjoin.EnginePlaneSweep
	r := spatialjoin.NewRelation("R", base, cfgA)
	s := spatialjoin.NewRelation("S", base, cfgB)
	ctx := context.Background()

	// Mismatched build configurations are rejected without an override…
	if _, _, err := spatialjoin.Join(ctx, r, s); err == nil {
		t.Error("mismatched build configs not rejected")
	}
	// …and accepted with one.
	if _, _, err := spatialjoin.Join(ctx, r, s, spatialjoin.WithConfig(cfgA)); err != nil {
		t.Errorf("explicit config override rejected: %v", err)
	}
	// Negative ε is invalid.
	if _, _, err := spatialjoin.Join(ctx, r, r,
		spatialjoin.WithPredicate(spatialjoin.WithinDistance(-1))); err == nil {
		t.Error("negative epsilon not rejected")
	}
	// Query requires a target; nearest takes no predicate.
	if _, err := spatialjoin.Query(ctx, r); err == nil {
		t.Error("targetless query not rejected")
	}
	if _, err := spatialjoin.Query(ctx, r,
		spatialjoin.ForNearest(spatialjoin.Point{}, 2),
		spatialjoin.WithPredicate(spatialjoin.Contains())); err == nil {
		t.Error("nearest with predicate not rejected")
	}
	// ForNearest with k ≤ 0 is an empty nearest result, not a point query.
	if res, err := spatialjoin.Query(ctx, r,
		spatialjoin.ForNearest(spatialjoin.Point{X: 0.5, Y: 0.5}, 0)); err != nil || len(res.Neighbors) != 0 || len(res.IDs) != 0 {
		t.Errorf("ForNearest(p, 0) = %v neighbors, %v ids, err %v; want empty result", res.Neighbors, res.IDs, err)
	}
	// Conflicting targets are rejected in every combination.
	if _, err := spatialjoin.Query(ctx, r,
		spatialjoin.ForWindow(spatialjoin.Rect{MaxX: 1, MaxY: 1}),
		spatialjoin.ForNearest(spatialjoin.Point{}, 2)); err == nil {
		t.Error("window+nearest targets not rejected")
	}
	if _, err := spatialjoin.Query(ctx, r,
		spatialjoin.ForWindow(spatialjoin.Rect{MaxX: 1, MaxY: 1}),
		spatialjoin.ForPoint(spatialjoin.Point{})); err == nil {
		t.Error("window+point targets not rejected")
	}

	// WithLimit returns the sorted prefix.
	full, _, err := spatialjoin.Join(ctx, r, r)
	if err != nil {
		t.Fatal(err)
	}
	limited, st, err := spatialjoin.Join(ctx, r, r, spatialjoin.WithLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 3 || !reflect.DeepEqual(limited, full[:3]) {
		t.Errorf("WithLimit(3) returned %v, want prefix of %v", limited, full[:6])
	}
	if st.ResultPairs != int64(len(full)) {
		t.Errorf("WithLimit changed the statistics: %d vs %d", st.ResultPairs, len(full))
	}
}
