//lint:file-ignore SA1019 this file exercises the deprecated *Access wrappers under concurrency
package spatialjoin_test

import (
	"reflect"
	"sync"
	"testing"

	"spatialjoin"
)

// TestConcurrentFacadeQueries exercises the per-query access contexts
// through the public facade: one opened Relation pair, many goroutines,
// every query on its own Session — results and statistics must equal
// the solo-run baselines (run under -race in CI).
func TestConcurrentFacadeQueries(t *testing.T) {
	base := spatialjoin.GenerateMap(spatialjoin.MapConfig{Cells: 60, TargetVerts: 40, Seed: 99})
	shifted := spatialjoin.ShiftedCopy(base, 0.45)
	cfg := spatialjoin.DefaultConfig()
	cfg.BufferBytes = 8192
	r := spatialjoin.NewRelation("R", base, cfg)
	s := spatialjoin.NewRelation("S", shifted, cfg)

	win := spatialjoin.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}
	pt := spatialjoin.Point{X: 0.5, Y: 0.5}

	wantIDs, wantWSt := spatialjoin.WindowQueryAccess(r, r.NewSession(), win, cfg)
	wantPt, wantPSt := spatialjoin.PointQueryAccess(r, r.NewSession(), pt, cfg)
	wantNN := spatialjoin.NearestObjectsAccess(r, r.NewSession(), pt, 4)
	wantJoinSt := spatialjoin.JoinStream(r, s, cfg, spatialjoin.StreamOptions{
		Workers: 2, AccessR: r.NewSession(), AccessS: s.NewSession(),
	}, nil)
	wantCont, wantContSt := spatialjoin.JoinContainsAccess(r, s, r.NewSession(), s.NewSession(), cfg)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 5 {
			case 0:
				ids, st := spatialjoin.WindowQueryAccess(r, r.NewSession(), win, cfg)
				if !reflect.DeepEqual(ids, wantIDs) || st != wantWSt {
					t.Errorf("goroutine %d: window query diverged", g)
				}
			case 1:
				ids, st := spatialjoin.PointQueryAccess(r, r.NewSession(), pt, cfg)
				if !reflect.DeepEqual(ids, wantPt) || st != wantPSt {
					t.Errorf("goroutine %d: point query diverged", g)
				}
			case 2:
				nn := spatialjoin.NearestObjectsAccess(r, r.NewSession(), pt, 4)
				if !reflect.DeepEqual(nn, wantNN) {
					t.Errorf("goroutine %d: nearest query diverged", g)
				}
			case 3:
				st := spatialjoin.JoinStream(r, s, cfg, spatialjoin.StreamOptions{
					Workers: 2, AccessR: r.NewSession(), AccessS: s.NewSession(),
				}, nil)
				if !reflect.DeepEqual(st, wantJoinSt) {
					t.Errorf("goroutine %d: join stats diverged", g)
				}
			case 4:
				pairs, st := spatialjoin.JoinContainsAccess(r, s, r.NewSession(), s.NewSession(), cfg)
				if !reflect.DeepEqual(pairs, wantCont) || !reflect.DeepEqual(st, wantContSt) {
					t.Errorf("goroutine %d: inclusion join diverged", g)
				}
			}
		}(g)
	}
	wg.Wait()

	// A Session is an Accessor; the aliases are wired.
	var ax spatialjoin.Accessor = r.NewSession()
	ax.Access(0)
	if ax.Accesses() != 1 {
		t.Error("Session accessor alias broken")
	}
}
