// Quickstart: run the paper's three-step spatial join on two small
// relations of polygons through the public API and inspect the per-step
// statistics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"spatialjoin"
)

func main() {
	// A relation is simply a slice of polygons. Here we generate a small
	// cartographic map (a tiling of county-like polygons) and join it with
	// a shifted copy of itself — the paper's strategy A.
	counties := spatialjoin.GenerateMap(spatialjoin.MapConfig{
		Cells:       100, // polygons
		TargetVerts: 60,  // average boundary complexity
		Seed:        42,
	})
	shifted := spatialjoin.ShiftedCopy(counties, 0.45)

	// The paper's recommended configuration: MBR-join on an R*-tree,
	// geometric filter with the 5-corner + maximum enclosed rectangle,
	// exact step on TR*-trees with node capacity 3.
	cfg := spatialjoin.DefaultConfig()

	// NewRelation preprocesses each input once: approximations for every
	// object and the R*-tree over the MBRs.
	r := spatialjoin.NewRelation("counties", counties, cfg)
	s := spatialjoin.NewRelation("shifted", shifted, cfg)

	// One unified, context-aware entry point: the relations carry their
	// build configuration, the predicate and execution knobs are options.
	pairs, st, err := spatialjoin.Join(context.Background(), r, s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("objects: %d × %d\n", len(counties), len(shifted))
	fmt.Printf("step 1 — MBR-join:   %d candidate pairs\n", st.CandidatePairs)
	fmt.Printf("step 2 — filter:     %d hits + %d false hits identified (%.0f%%)\n",
		st.FilterHits, st.FilterFalseHits, 100*st.Identified())
	fmt.Printf("step 3 — TR*-tree:   %d pairs needed exact geometry\n", st.ExactTested)
	fmt.Printf("response set:        %d intersecting pairs\n", len(pairs))
	fmt.Printf("first pairs:         ")
	for i, p := range pairs {
		if i == 5 {
			break
		}
		fmt.Printf("(%d,%d) ", p.A, p.B)
	}
	fmt.Println()

	// Window query through the same multi-step machinery (the unified
	// Query entry point serves window, point, ε-range and nearest).
	res, err := spatialjoin.Query(context.Background(), r,
		spatialjoin.ForWindow(spatialjoin.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window query:        %d counties intersect the center window\n", len(res.IDs))

	// The within-distance (ε-)join rides the same index and pipeline:
	// pairs of regions within ε of each other, not just intersecting.
	within, _, err := spatialjoin.Join(context.Background(), r, s,
		spatialjoin.WithPredicate(spatialjoin.WithinDistance(0.01)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε-join (ε=0.01):     %d pairs within distance (⊇ the %d intersecting)\n",
		len(within), len(pairs))
}
