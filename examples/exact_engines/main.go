// Exact engines: decide the same candidate pairs with the three exact
// geometry algorithms of section 4 (quadratic, plane sweep, TR*-tree) and
// compare their weighted operation costs — a miniature Table 7.
//
//	go run ./examples/exact_engines
package main

import (
	"fmt"

	"spatialjoin/internal/data"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/trstar"
)

func main() {
	// Complex objects make the differences dramatic: 400-vertex polygons.
	base := data.GenerateMap(data.MapConfig{Cells: 60, TargetVerts: 400, Seed: 1994})
	shifted := data.StrategyA(base, 0.45)

	// Collect the MBR-candidate pairs.
	type pair struct{ i, j int }
	var pairs []pair
	for i, a := range base {
		for j, b := range shifted {
			if a.Bounds().Intersects(b.Bounds()) {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	fmt.Printf("%d objects with ~%d vertices, %d candidate pairs\n\n",
		len(base), base[0].NumVertices(), len(pairs))

	// Preprocess once per object, outside the measured cost — exactly as
	// the paper treats preprocessing.
	prepared := map[*geom.Polygon]*exact.PreparedPolygon{}
	trees := map[*geom.Polygon]*trstar.Tree{}
	for _, polys := range [][]*geom.Polygon{base, shifted} {
		for _, p := range polys {
			prepared[p] = exact.Prepare(p)
			trees[p] = trstar.NewFromPolygon(p, trstar.DefaultCapacity)
		}
	}

	w := ops.PaperWeights()
	run := func(name string, test func(a, b *geom.Polygon, c *ops.Counters) bool) {
		var c ops.Counters
		hits := 0
		for _, pr := range pairs {
			if test(base[pr.i], shifted[pr.j], &c) {
				hits++
			}
		}
		fmt.Printf("%-12s %6d hits   cost %8.2f s (paper weights)   %s\n",
			name, hits, c.Cost(w), c.String())
	}

	run("quadratic", func(a, b *geom.Polygon, c *ops.Counters) bool {
		return exact.QuadraticIntersects(prepared[a], prepared[b], c)
	})
	run("plane-sweep", func(a, b *geom.Polygon, c *ops.Counters) bool {
		return exact.PlaneSweepIntersects(prepared[a], prepared[b], true, c)
	})
	run("TR*-tree", func(a, b *geom.Polygon, c *ops.Counters) bool {
		return trstar.Intersects(trees[a], trees[b], c)
	})
	fmt.Println("\nTable 7's shape: quadratic is out of question; the TR*-tree beats the")
	fmt.Println("plane sweep by an order of magnitude on complex objects.")
}
