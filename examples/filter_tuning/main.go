// Filter tuning: compare every conservative × progressive approximation
// pair as the geometric filter of step 2, reproducing the design space of
// section 3 on one workload. The paper's recommendation (5-C + MER) should
// come out near the top: most candidates identified for a small storage
// overhead.
//
//	go run ./examples/filter_tuning
package main

import (
	"context"
	"fmt"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
)

func main() {
	base := data.GenerateMap(data.MapConfig{Cells: 300, TargetVerts: 64, Seed: 7})
	shifted := data.StrategyA(base, 0.45)

	conservatives := []approx.Kind{approx.MBC, approx.MBE, approx.RMBR, approx.C4, approx.C5, approx.CH}
	progressives := []approx.Kind{approx.MEC, approx.MER}

	fmt.Printf("%-14s %-6s %10s %10s %10s %8s %10s\n",
		"conservative", "prog", "falseHits", "hits", "exact", "ident%", "entry B")
	for _, cons := range conservatives {
		for _, prog := range progressives {
			cfg := multistep.DefaultConfig()
			cfg.Filter.Conservative = cons
			cfg.Filter.Progressive = prog
			cfg.MECPrecision = 2e-3

			r := multistep.NewRelation("R", base, cfg)
			s := multistep.NewRelation("S", shifted, cfg)
			_, st, err := multistep.Join(context.Background(), r, s, multistep.WithWorkers(1))
			if err != nil {
				panic(err)
			}

			fmt.Printf("%-14s %-6s %10d %10d %10d %7.0f%% %10d\n",
				cons, prog, st.FilterFalseHits, st.FilterHits, st.ExactTested,
				100*st.Identified(), multistep.EntryBytes(cfg))
		}
	}
	fmt.Println("\nThe paper recommends 5-C + MER: high identification at 104-byte entries,")
	fmt.Println("while the convex hull costs unbounded storage and circles identify the least.")
}
