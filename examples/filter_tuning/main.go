// Filter tuning, revisited: the knobs this example used to hand-sweep —
// exact engine and geometric filter — are now owned by the cost-based
// planner. The example still runs the manual sweep so the design space of
// section 3 stays visible, then lets the planner pick a configuration for
// the same workload and compares its choice against the sweep: the plan
// should land within a small factor of the best hand-tuned cell, without
// anyone sweeping anything.
//
//	go run ./examples/filter_tuning
package main

import (
	"context"
	"fmt"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
)

const reps = 3

// measure returns the fastest of reps timed runs (the first run warms up
// the lazy exact representations before any timing starts).
func measure(r, s *multistep.Relation, opts ...multistep.Option) (time.Duration, multistep.Stats) {
	opts = append(opts, multistep.WithBufferless())
	var best time.Duration
	var stats multistep.Stats
	for i := 0; i <= reps; i++ {
		t0 := time.Now()
		_, st, err := multistep.Join(context.Background(), r, s, opts...)
		if err != nil {
			panic(err)
		}
		if d := time.Since(t0); i == 0 || d < best {
			best, stats = d, st
		}
	}
	return best, stats
}

func main() {
	cfg := multistep.DefaultConfig()
	base := data.GenerateMap(data.MapConfig{Cells: 400, TargetVerts: 48, Seed: 7})
	shifted := data.StrategyA(base, 0.45)
	r := multistep.NewRelation("R", base, cfg)
	s := multistep.NewRelation("S", shifted, cfg)

	// The manual route: sweep every engine × filter cell and keep score.
	fmt.Println("manual sweep (engine × filter):")
	fmt.Printf("  %-12s %-8s %10s %12s %10s\n", "engine", "filter", "time", "candidates", "exact")
	engines := []multistep.Engine{
		multistep.EngineTRStar, multistep.EnginePlaneSweep, multistep.EngineQuadratic,
	}
	var best, worst time.Duration
	var bestName string
	for _, eng := range engines {
		for _, filt := range []bool{true, false} {
			c := cfg
			c.Engine = eng
			c.UseFilter = filt
			d, st := measure(r, s, multistep.WithConfig(c), multistep.WithWorkers(1))
			name := eng.String()
			filtCol := "on"
			if !filt {
				name += " (no filter)"
				filtCol = "off"
			}
			fmt.Printf("  %-12s %-8s %10v %12d %10d\n", eng, filtCol, d.Round(time.Microsecond), st.CandidatePairs, st.ExactTested)
			if best == 0 || d < best {
				best, bestName = d, name
			}
			if d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("  best %s at %v, worst %v (%.1f× spread)\n\n",
		bestName, best.Round(time.Microsecond), worst.Round(time.Microsecond), float64(worst)/float64(best))

	// The planner route: ask for a plan instead of sweeping. ExplainJoin
	// shows the choice and its cost estimate without executing anything.
	ex, err := multistep.ExplainJoin(r, s, multistep.WithPlan())
	if err != nil {
		panic(err)
	}
	p := ex.Plan
	fmt.Printf("planner choice: engine=%s filter=%v workers=%d\n", p.Engine, p.UseFilter, p.Workers)
	fmt.Printf("  predicted: %.0f candidates, cost %v\n",
		p.PredictedCandidates, time.Duration(p.PredictedCostNs).Round(time.Microsecond))

	d, st := measure(r, s, multistep.WithPlan())
	fmt.Printf("  actual:    %d candidates in %v — %.2f× the best hand-tuned cell\n",
		st.CandidatePairs, d.Round(time.Microsecond), float64(d)/float64(best))
	fmt.Println("\nThe sweep above is what the planner replaces: relation statistics plus a")
	fmt.Println("calibrated cost model pick the engine and filter per join, and feedback from")
	fmt.Println("each run keeps the selectivity estimates honest.")
}
