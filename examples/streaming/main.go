// Streaming: run the join as the fully parallel, bounded-memory pipeline
// (JoinStream) and consume response pairs as they are decided, instead of
// waiting for the materialized response set. The statistics are exactly
// those of the sequential Join; only the delivery changes.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"spatialjoin"
)

func main() {
	counties := spatialjoin.GenerateMap(spatialjoin.MapConfig{
		Cells:       600,
		TargetVerts: 48,
		Seed:        42,
	})
	shifted := spatialjoin.ShiftedCopy(counties, 0.45)

	cfg := spatialjoin.DefaultConfig()
	r := spatialjoin.NewRelation("counties", counties, cfg)
	s := spatialjoin.NewRelation("shifted", shifted, cfg)

	ctx := context.Background()

	// Warm the lazily built exact representations once, so the timed runs
	// below compare the join drivers rather than the one-time object
	// preprocessing.
	if _, _, err := spatialjoin.Join(ctx, r, s, spatialjoin.WithBufferless()); err != nil {
		log.Fatal(err)
	}

	// Sequential baseline: one worker, collect and sort the response set.
	t0 := time.Now()
	pairs, _, err := spatialjoin.Join(ctx, r, s, spatialjoin.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	seq := time.Since(t0)

	// Streaming: step 1 is partitioned over workers, candidates flow
	// through bounded channels into a filter/exact worker pool, and the
	// emit callback sees pairs the moment they are decided — here it just
	// counts them and samples the first few.
	workers := runtime.GOMAXPROCS(0)
	var streamed int
	var sample []spatialjoin.Pair
	t0 = time.Now()
	_, st, err := spatialjoin.Join(ctx, r, s,
		spatialjoin.WithWorkers(workers),
		spatialjoin.WithStream(func(p spatialjoin.Pair) {
			if streamed < 5 {
				sample = append(sample, p)
			}
			streamed++
		}))
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	fmt.Printf("objects: %d × %d, workers: %d\n", len(counties), len(shifted), workers)
	fmt.Printf("sequential Join:  %d pairs in %v\n", len(pairs), seq.Round(time.Millisecond))
	fmt.Printf("streamed Join:    %d pairs in %v (%.1f× vs sequential; scales with cores)\n",
		streamed, wall.Round(time.Millisecond), seq.Seconds()/wall.Seconds())
	fmt.Printf("first streamed:   %v (delivery order is nondeterministic)\n", sample)
	fmt.Printf("stats match Join: %d candidates, %d filter-decided, %d exact tests\n",
		st.CandidatePairs, st.FilterHits+st.FilterFalseHits, st.ExactTested)
}
