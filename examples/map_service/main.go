// Map service: a batch query workload over a persisted map — the spatial
// selections of section 2 (point queries, window queries, nearest
// neighbours) served by the same multi-step machinery as the join. The
// map is generated once, persisted to disk, reloaded and indexed, and
// then a mixed workload runs against it.
//
//	go run ./examples/map_service
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"spatialjoin"
)

func main() {
	// Build and persist the base map (in memory here; cmd/datagen writes
	// the same format to files).
	parcels := spatialjoin.GenerateMap(spatialjoin.MapConfig{
		Cells:        900,
		TargetVerts:  48,
		HoleFraction: 0.08,
		Seed:         2024,
	})
	var store bytes.Buffer
	if err := spatialjoin.WritePolygons(&store, parcels); err != nil {
		panic(err)
	}
	fmt.Printf("persisted %d parcels in %d KiB\n", len(parcels), store.Len()/1024)

	// Reload and index.
	loaded, err := spatialjoin.ReadPolygons(&store)
	if err != nil {
		panic(err)
	}
	cfg := spatialjoin.DefaultConfig()
	start := time.Now()
	rel := spatialjoin.NewRelation("parcels", loaded, cfg)
	fmt.Printf("indexed in %.2fs (approximations + R*-tree)\n\n", time.Since(start).Seconds())

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	// Point queries: which parcel is here?
	hits := 0
	start = time.Now()
	for i := 0; i < 500; i++ {
		p := spatialjoin.Point{X: rng.Float64(), Y: rng.Float64()}
		res, err := spatialjoin.Query(ctx, rel, spatialjoin.ForPoint(p))
		if err != nil {
			log.Fatal(err)
		}
		hits += len(res.IDs)
	}
	fmt.Printf("500 point queries: %d parcels found, %.1f µs/query\n",
		hits, time.Since(start).Seconds()/500*1e6)

	// Window queries: what is visible in this viewport?
	found := 0
	decided := int64(0)
	var cands int64
	start = time.Now()
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		w := spatialjoin.Rect{MinX: x, MinY: y, MaxX: x + 0.08, MaxY: y + 0.08}
		res, err := spatialjoin.Query(ctx, rel, spatialjoin.ForWindow(w))
		if err != nil {
			log.Fatal(err)
		}
		found += len(res.IDs)
		decided += res.Stats.FilterHits + res.Stats.FilterFalseHits
		cands += res.Stats.Candidates
	}
	fmt.Printf("200 window queries: %d results, filter decided %.0f%% of candidates, %.1f µs/query\n",
		found, 100*float64(decided)/float64(cands), time.Since(start).Seconds()/200*1e6)

	// Nearest neighbours: the five parcels closest to a landmark.
	landmark := spatialjoin.Point{X: 0.42, Y: 0.58}
	near, err := spatialjoin.Query(ctx, rel, spatialjoin.ForNearest(landmark, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfive parcels nearest to the landmark:")
	for _, nb := range near.Neighbors {
		fmt.Printf("  parcel %3d at distance %.4f (%d vertices)\n",
			nb.ID, nb.Dist, loaded[nb.ID].NumVertices())
	}

	// ε-range query: every parcel within 0.02 of the landmark — the
	// within-distance predicate on a point target.
	rng2, err := spatialjoin.Query(ctx, rel, spatialjoin.ForPoint(landmark),
		spatialjoin.WithPredicate(spatialjoin.WithinDistance(0.02)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparcels within ε=0.02 of the landmark: %d\n", len(rng2.IDs))
}
