// GIS overlay: the paper's motivating queries — "find all forests which
// intersect a city" and the inclusion variant "find all forests which are
// IN a city" (section 1) — on two thematically different layers through
// the public API: an administrative tiling (cities) and an independently
// placed layer of forest polygons, some with lakes (holes).
//
//	go run ./examples/gis_overlay
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"spatialjoin"
)

func main() {
	// Cities: an administrative tiling of 400 polygons.
	cities := spatialjoin.GenerateMap(spatialjoin.MapConfig{
		Cells:       400,
		TargetVerts: 72,
		Seed:        1848,
	})
	// Forests: an independent layer of 250 complex polygons with lakes,
	// randomly placed over the same data space (strategy B keeps their
	// total area equal to the data-space area, so overlaps are plentiful).
	forestBase := spatialjoin.GenerateMap(spatialjoin.MapConfig{
		Cells:        250,
		TargetVerts:  96,
		HoleFraction: 0.35, // lakes
		Seed:         1871,
	})
	forests := spatialjoin.RandomizedCopy(forestBase, 3)

	cfg := spatialjoin.DefaultConfig()
	cityRel := spatialjoin.NewRelation("cities", cities, cfg)
	forestRel := spatialjoin.NewRelation("forests", forests, cfg)

	ctx := context.Background()

	// Intersection join: forests touching a city.
	pairs, st, err := spatialjoin.Join(ctx, forestRel, cityRel)
	if err != nil {
		log.Fatal(err)
	}

	// Inclusion join: city parks (small parcels) entirely inside a city.
	parkGrid := spatialjoin.GenerateMap(spatialjoin.MapConfig{
		Cells:       3600, // fine tiling → small parcels
		TargetVerts: 24,
		Seed:        1900,
	})
	var parks []*spatialjoin.Polygon
	for i := 0; i < len(parkGrid); i += 12 {
		parks = append(parks, parkGrid[i])
	}
	parkRel := spatialjoin.NewRelation("parks", parks, cfg)
	contained, _, err := spatialjoin.Join(ctx, cityRel, parkRel,
		spatialjoin.WithPredicate(spatialjoin.Contains()))
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate: which forests intersect how many cities?
	perForest := map[int32]int{}
	for _, p := range pairs {
		perForest[p.A]++
	}
	type entry struct {
		forest int32
		cities int
	}
	var ranked []entry
	for f, c := range perForest {
		ranked = append(ranked, entry{f, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].cities != ranked[j].cities {
			return ranked[i].cities > ranked[j].cities
		}
		return ranked[i].forest < ranked[j].forest
	})

	fmt.Printf("forests × cities: %d × %d objects\n", len(forests), len(cities))
	fmt.Printf("candidates %d → filter identified %.0f%% → exact tests %d → %d result pairs\n",
		st.CandidatePairs, 100*st.Identified(), st.ExactTested, len(pairs))
	fmt.Printf("%d of %d forests intersect at least one city\n", len(perForest), len(forests))
	fmt.Printf("%d of %d parks lie entirely within a city (inclusion join)\n", len(contained), len(parks))
	fmt.Println("most fragmented forests (forest id → #cities it spans):")
	for i, e := range ranked {
		if i == 5 {
			break
		}
		holes := len(forests[e.forest].Holes)
		fmt.Printf("  forest %3d spans %2d cities (%d lakes, %d vertices)\n",
			e.forest, e.cities, holes, forests[e.forest].NumVertices())
	}
}
